package seclint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Conccheck is the whole-program concurrency-discipline analyzer. The
// multi-tenant substrate (session multiplexing, worker pools, breakers,
// graceful drain) keeps the paper's clean-abort guarantee only while
// three conventions hold, and conccheck turns each into a machine check
// on the PR-5 call graph:
//
//  1. goroutine lifecycle — a `go` spawn reachable from a party entry
//     point must have a provable termination path (no for-loop without
//     an exit, no empty select), or carry a justified seclint:detached;
//  2. lock discipline — no mutex held across a blocking operation
//     (channel ops, blocking selects, Conn/Listener wire methods,
//     time.Sleep, sync.WaitGroup.Wait, calls through func values),
//     plus non-reentrant re-acquire detection and module-wide
//     lock-ordering cycle detection over the acquired-before graph;
//  3. channel/queue discipline — double-close, sends racing a close,
//     and capacity-less data channels inside the bounded-queue
//     perimeter (internal/session, internal/parallel).
//
// Precision cuts, chosen to keep the real tree reviewable: stdlib calls
// other than the listed waiting primitives are assumed non-blocking
// (gob/json encode onto an in-memory buffer does not park), calls
// through func values count as blocking only at the call site itself
// (the summary fixpoint does not propagate them), and only for-loops
// without a condition count as divergent (a ranged channel drain is
// assumed to end when its producer closes the channel).
var Conccheck = &Analyzer{
	Name:       "conccheck",
	Doc:        "concurrency discipline: goroutine termination, locks held across blocking operations, lock ordering, channel close and bounded-queue hygiene",
	RunProgram: runConccheck,
}

// boundedQueueDirs is the bounded-queue perimeter: packages whose whole
// design is explicit queue depths, where a capacity-less data channel
// silently reintroduces synchronous handoff.
var boundedQueueDirs = []string{"internal/session", "internal/parallel"}

func inBoundedPerimeter(relDir string) bool {
	for _, d := range boundedQueueDirs {
		if relDir == d || strings.HasPrefix(relDir, d+"/") {
			return true
		}
	}
	return false
}

// heldLock is one lock in the walker's held set.
type heldLock struct {
	obj  types.Object
	name string // rendered receiver chain, e.g. "m.sendMu"
	pos  token.Pos
	read bool
}

// chanSite is one close or send on a tracked channel.
type chanSite struct {
	fn   *Fn
	pkg  *Package
	pos  token.Pos
	once types.Object // the sync.Once whose Do closure contains the site
	held []types.Object
}

// chanFacts aggregates every close and send site of one channel object.
type chanFacts struct {
	name   string
	closes []chanSite
	sends  []chanSite
}

// orderEdgeRec is one acquired-before edge: from was held when to was
// acquired (directly or inside a callee).
type orderEdgeRec struct {
	from, to         types.Object
	fromName, toName string
	pkg              *Package
	pos              token.Pos
}

type concChecker struct {
	pass *ProgramPass
	prog *Program

	// blockRoot names the blocking primitive a function can reach
	// through synchronously-executed edges; "" when it cannot block.
	blockRoot map[*Fn]string
	// divergeRoot names why a function provably never returns.
	divergeRoot map[*Fn]string
	// acquires is the set of locks a function (transitively) acquires.
	acquires map[*Fn]map[types.Object]bool

	litFn    map[*ast.FuncLit]*Fn
	onceLits map[*ast.FuncLit]types.Object

	chans     map[types.Object]*chanFacts
	chanOrder []types.Object

	orderEdges []orderEdgeRec
	orderSeen  map[[2]types.Object]bool

	guardsUsed   map[*Fn]bool
	detachedUsed map[*Fn]bool
}

func runConccheck(pass *ProgramPass) {
	c := &concChecker{
		pass:         pass,
		prog:         pass.Program,
		blockRoot:    make(map[*Fn]string),
		divergeRoot:  make(map[*Fn]string),
		acquires:     make(map[*Fn]map[types.Object]bool),
		litFn:        make(map[*ast.FuncLit]*Fn),
		onceLits:     make(map[*ast.FuncLit]types.Object),
		chans:        make(map[types.Object]*chanFacts),
		orderSeen:    make(map[[2]types.Object]bool),
		guardsUsed:   make(map[*Fn]bool),
		detachedUsed: make(map[*Fn]bool),
	}
	c.collectLits()
	c.buildBlocking()
	c.buildDiverge()
	c.buildAcquires()
	for _, fn := range c.prog.All {
		c.walkFn(fn)
	}
	c.checkSpawns()
	c.checkChannels()
	c.checkOrder()
	c.checkAnnotations()
}

func (c *concChecker) line(pos token.Pos) int {
	return c.pass.Fset.Position(pos).Line
}

// collectLits maps every closure node to its Fn and records which
// closures are sync.Once.Do arguments (those execute synchronously and
// at most once, which both the summaries and the close rules rely on).
func (c *concChecker) collectLits() {
	for _, fn := range c.prog.All {
		if fn.Lit != nil {
			c.litFn[fn.Lit] = fn
		}
	}
	for _, pkg := range c.prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || !isOnceDo(obj) || len(call.Args) != 1 {
					return true
				}
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
					c.onceLits[lit] = lockObj(pkg.Info, sel.X)
				}
				return true
			})
		}
	}
}

// onceOf returns the sync.Once object guarding fn (fn or an enclosing
// closure is a Once.Do argument), or nil.
func (c *concChecker) onceOf(fn *Fn) types.Object {
	for f := fn; f != nil; f = f.Parent {
		if f.Lit != nil {
			if o, ok := c.onceLits[f.Lit]; ok {
				return o
			}
		}
	}
	return nil
}

// blockExecutes reports whether the edge runs synchronously in the
// caller for may-block purposes: plain calls, defers (they run before
// return), interface dispatch (any implementation may be picked), and
// Once.Do closures. Spawns and plain closure creation do not execute.
func (c *concChecker) blockExecutes(e Edge) bool {
	switch e.Kind {
	case "call", "defer", "iface":
		return true
	case "closure":
		if e.Callee.Lit != nil {
			_, ok := c.onceLits[e.Callee.Lit]
			return ok
		}
	}
	return false
}

// strictExecutes is blockExecutes minus interface dispatch: divergence
// and lock-set summaries use must-semantics, where "some implementation
// might" would manufacture false deadlocks and false leaks.
func (c *concChecker) strictExecutes(e Edge) bool {
	return e.Kind != "iface" && c.blockExecutes(e)
}

// guardsOn returns the seclint:guards-annotated function covering fn
// (itself or an enclosing closure's creator), or nil.
func (c *concChecker) guardsOn(fn *Fn) *Fn {
	for f := fn; f != nil; f = f.Parent {
		if f.Guards {
			return f
		}
	}
	return nil
}

// detachedOn is the seclint:detached analogue of guardsOn.
func (c *concChecker) detachedOn(fn *Fn) *Fn {
	for f := fn; f != nil; f = f.Parent {
		if f.Detached {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Summaries (fixpoints over the call graph)

func (c *concChecker) buildBlocking() {
	for _, fn := range c.prog.All {
		if fn.Blocking {
			c.blockRoot[fn] = fmt.Sprintf("%s (seclint:blocking)", fn.Name)
			continue
		}
		if d := c.directBlock(fn); d != "" {
			c.blockRoot[fn] = d
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range c.prog.All {
			if c.blockRoot[fn] != "" {
				continue
			}
			for _, e := range fn.Edges {
				if !c.blockExecutes(e) {
					continue
				}
				if r := c.blockRoot[e.Callee]; r != "" {
					c.blockRoot[fn] = r
					changed = true
					break
				}
			}
		}
	}
}

// directBlock finds the first blocking primitive in fn's own body:
// channel ops outside a defaulted select, blocking selects, channel
// ranges, and the known-blocking external calls. Nested closures are
// their own nodes; calls a goroutine makes run off-thread.
func (c *concChecker) directBlock(fn *Fn) string {
	body := fn.Body()
	if body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
		return ""
	}
	info := fn.Pkg.Info
	skip := make(map[ast.Node]bool)
	var found string
	set := func(desc string) {
		if found == "" {
			found = desc
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			skip[x.Call] = true
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				set("a blocking select")
				return false
			}
			// A select with a default never parks; its comm clauses
			// must not count as blocking channel ops.
			for _, cl := range x.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				switch cm := cc.Comm.(type) {
				case *ast.SendStmt:
					skip[cm] = true
				case *ast.ExprStmt:
					skip[ast.Unparen(cm.X)] = true
				case *ast.AssignStmt:
					for _, e := range cm.Rhs {
						skip[ast.Unparen(e)] = true
					}
				}
			}
		case *ast.SendStmt:
			if !skip[x] {
				set("a channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !skip[x] {
				set("a channel receive")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					set("a range over a channel")
				}
			}
		case *ast.CallExpr:
			if skip[x] {
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
					if _, mod := c.prog.fns[obj.Origin()]; !mod {
						if d := blockingExternal(obj.Origin()); d != "" {
							set(d)
						}
					}
				}
			}
		}
		return true
	})
	return found
}

func (c *concChecker) buildDiverge() {
	for _, fn := range c.prog.All {
		if d := c.directDiverge(fn); d != "" {
			c.divergeRoot[fn] = d
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range c.prog.All {
			if c.divergeRoot[fn] != "" {
				continue
			}
			for _, e := range fn.Edges {
				if e.Kind != "call" {
					continue // only an unconditional-looking plain call chain diverges the caller
				}
				if r := c.divergeRoot[e.Callee]; r != "" {
					c.divergeRoot[fn] = r
					changed = true
					break
				}
			}
		}
	}
}

// directDiverge reports why fn provably never returns: a for-loop with
// no condition and no exit (return, binding break, goto, panic, or a
// terminal call), or an empty select.
func (c *concChecker) directDiverge(fn *Fn) string {
	body := fn.Body()
	if body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
		return ""
	}
	info := fn.Pkg.Info
	labels := make(map[ast.Stmt]string)
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			labels[x.Stmt] = x.Label.Name
		case *ast.SelectStmt:
			if len(x.Body.List) == 0 {
				found = fmt.Sprintf("%s blocks forever on an empty select at line %d", fn.Name, c.line(x.Select))
				return false
			}
		case *ast.ForStmt:
			if x.Cond == nil && !loopExits(x, labels[ast.Stmt(x)], info) {
				found = fmt.Sprintf("%s loops forever at line %d", fn.Name, c.line(x.For))
				return false
			}
		}
		return true
	})
	return found
}

// loopExits reports whether the conditionless loop has any way out.
func loopExits(loop *ast.ForStmt, label string, info *types.Info) bool {
	exits := false
	var scan func(root ast.Node, nested bool)
	scan = func(root ast.Node, nested bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if exits {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
				return false
			case *ast.BranchStmt:
				switch x.Tok {
				case token.BREAK:
					if !nested || (x.Label != nil && label != "" && x.Label.Name == label) {
						exits = true
					}
				case token.GOTO:
					exits = true // conservatively, a goto may leave the loop
				}
				return false
			case *ast.CallExpr:
				if isTerminalCall(info, x) {
					exits = true
					return false
				}
				return true
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// Unlabeled breaks inside bind to this inner construct.
				if n != root {
					scan(n, true)
					return false
				}
			}
			return true
		})
	}
	scan(loop.Body, false)
	return exits
}

// isTerminalCall matches calls that end the goroutine: panic, os.Exit,
// log.Fatal*/Panic*, runtime.Goexit.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[f].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		obj, ok := info.Uses[f.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return obj.Name() == "Exit"
		case "log":
			return strings.HasPrefix(obj.Name(), "Fatal") || strings.HasPrefix(obj.Name(), "Panic")
		case "runtime":
			return obj.Name() == "Goexit"
		}
	}
	return false
}

func (c *concChecker) buildAcquires() {
	for _, fn := range c.prog.All {
		body := fn.Body()
		if body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
			continue
		}
		info := fn.Pkg.Info
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if m, ok := info.Uses[sel.Sel].(*types.Func); ok && isSyncLockMethod(m) {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					if obj := lockObj(info, sel.X); obj != nil {
						set := c.acquires[fn]
						if set == nil {
							set = make(map[types.Object]bool)
							c.acquires[fn] = set
						}
						set[obj] = true
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range c.prog.All {
			for _, e := range fn.Edges {
				if !c.strictExecutes(e) {
					continue
				}
				for obj := range c.acquires[e.Callee] {
					set := c.acquires[fn]
					if set == nil {
						set = make(map[types.Object]bool)
						c.acquires[fn] = set
					}
					if !set[obj] {
						set[obj] = true
						changed = true
					}
				}
			}
		}
	}
}

// isSyncLockMethod reports whether m is a sync.Mutex/RWMutex lock-family
// method (Lock/Unlock/RLock/RUnlock).
func isSyncLockMethod(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() != "sync" || (tn.Name() != "Mutex" && tn.Name() != "RWMutex") {
		return false
	}
	switch m.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return true
	}
	return false
}

func isOnceDo(m *types.Func) bool {
	if m.Name() != "Do" {
		return false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Once"
}

// blockingExternal classifies a non-module function as a known waiting
// primitive: time.Sleep, net dial/listen, sync.WaitGroup/Cond Wait, and
// the wire-shaped methods (Send/Recv/Expect/Accept) of any interface
// named Conn or Listener — the axiom that makes transport.Conn calls
// blocking without conccheck having to see the implementations.
func blockingExternal(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "time":
				if obj.Name() == "Sleep" {
					return "time.Sleep"
				}
			case "net":
				switch obj.Name() {
				case "Dial", "DialTimeout", "Listen":
					return "net." + obj.Name()
				}
			}
		}
		return ""
	}
	rt := sig.Recv().Type()
	if named, ok := rt.(*types.Named); ok && types.IsInterface(named) {
		tn := named.Obj()
		if (tn.Name() == "Conn" || tn.Name() == "Listener") && isWireMethod(obj.Name()) {
			q := tn.Name()
			if tn.Pkg() != nil {
				q = tn.Pkg().Name() + "." + q
			}
			return q + "." + obj.Name()
		}
		return ""
	}
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		tn := named.Obj()
		if tn.Pkg() != nil && tn.Pkg().Path() == "sync" && obj.Name() == "Wait" &&
			(tn.Name() == "WaitGroup" || tn.Name() == "Cond") {
			return "sync." + tn.Name() + ".Wait"
		}
	}
	return ""
}

func isWireMethod(name string) bool {
	switch name {
	case "Send", "Recv", "Expect", "Accept":
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// The per-function lock walk (rule 2, plus channel-site collection)

func (c *concChecker) walkFn(fn *Fn) {
	body := fn.Body()
	if body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
		return
	}
	lw := &lockWalker{c: c, fn: fn, pkg: fn.Pkg}
	lw.stmts(body.List, nil)
}

type lockWalker struct {
	c   *concChecker
	fn  *Fn
	pkg *Package
}

func cloneHeld(h []heldLock) []heldLock {
	return append([]heldLock(nil), h...)
}

func heldObjs(h []heldLock) []types.Object {
	out := make([]types.Object, len(h))
	for i := range h {
		out[i] = h[i].obj
	}
	return out
}

// intersectHeld keeps the locks of a that are also held in b — the
// must-hold state after a branch merge.
func intersectHeld(a, b []heldLock) []heldLock {
	var out []heldLock
	for _, h := range a {
		for _, o := range b {
			if h.obj == o.obj {
				out = append(out, h)
				break
			}
		}
	}
	return out
}

func releaseHeld(held []heldLock, obj types.Object) []heldLock {
	if obj == nil {
		return held
	}
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].obj == obj {
			out := append([]heldLock(nil), held[:i]...)
			return append(out, held[i+1:]...)
		}
	}
	return held
}

// stmts walks a statement list sequentially, threading the held-lock
// set, and reports whether the list terminates control flow.
func (lw *lockWalker) stmts(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = lw.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (lw *lockWalker) stmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return held, false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if obj, name, read, isLock, isUnlock := lw.lockCall(call); isLock {
				return lw.acquire(held, obj, name, call.Pos(), read), false
			} else if isUnlock {
				return releaseHeld(held, obj), false
			}
			if isTerminalCall(lw.pkg.Info, call) {
				lw.ops(s.X, held)
				return held, true
			}
		}
		lw.ops(s.X, held)
		return held, false
	case *ast.SendStmt:
		lw.ops(s.Chan, held)
		lw.ops(s.Value, held)
		lw.sendSite(s.Chan, s.Arrow, held)
		lw.block(s.Arrow, "a channel send", held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lw.ops(e, held)
		}
		for _, e := range s.Lhs {
			lw.ops(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		lw.ops(s.Decl, held)
		return held, false
	case *ast.IncDecStmt:
		lw.ops(s.X, held)
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lw.ops(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto end this block's straight-line flow.
		return held, s.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		// Arguments evaluate now; the call runs at return. `defer
		// x.Unlock()` is the held-to-return idiom, so the lock stays in
		// the held set and later blocking ops still report.
		for _, a := range s.Call.Args {
			lw.ops(a, held)
		}
		return held, false
	case *ast.GoStmt:
		// Only the arguments run on this goroutine.
		for _, a := range s.Call.Args {
			lw.ops(a, held)
		}
		return held, false
	case *ast.BlockStmt:
		return lw.stmts(s.List, held)
	case *ast.LabeledStmt:
		return lw.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.ops(s.Cond, held)
		bodyHeld, bodyTerm := lw.stmts(s.Body.List, cloneHeld(held))
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = lw.stmt(s.Else, cloneHeld(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return intersectHeld(bodyHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.ops(s.Cond, held)
		}
		lw.stmts(s.Body.List, cloneHeld(held))
		if s.Post != nil {
			lw.stmt(s.Post, cloneHeld(held))
		}
		return held, false
	case *ast.RangeStmt:
		lw.ops(s.X, held)
		if t := lw.pkg.Info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				lw.block(s.For, "a range over a channel", held)
			}
		}
		lw.stmts(s.Body.List, cloneHeld(held))
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.ops(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lw.ops(e, held)
				}
				lw.stmts(cc.Body, cloneHeld(held))
			}
		}
		return held, false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.ops(s.Assign, held)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				lw.stmts(cc.Body, cloneHeld(held))
			}
		}
		return held, false
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lw.block(s.Select, "a blocking select", held)
		}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				lw.ops(comm.Chan, held)
				lw.ops(comm.Value, held)
				// A select send can still race a close, default or not.
				lw.sendSite(comm.Chan, comm.Arrow, held)
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					lw.ops(u.X, held)
				}
			case *ast.AssignStmt:
				for _, e := range comm.Rhs {
					if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						lw.ops(u.X, held)
					} else {
						lw.ops(e, held)
					}
				}
			}
			lw.stmts(cc.Body, cloneHeld(held))
		}
		return held, false
	}
	lw.ops(s, held)
	return held, false
}

// lockCall classifies a sync.Mutex/RWMutex lock-family call.
func (lw *lockWalker) lockCall(call *ast.CallExpr) (obj types.Object, name string, read, isLock, isUnlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false, false, false
	}
	m, ok := lw.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !isSyncLockMethod(m) {
		return nil, "", false, false, false
	}
	obj = lockObj(lw.pkg.Info, sel.X)
	name = exprName(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		return obj, name, false, true, false
	case "RLock":
		return obj, name, true, true, false
	default: // Unlock, RUnlock
		return obj, name, false, false, true
	}
}

func (lw *lockWalker) acquire(held []heldLock, obj types.Object, name string, pos token.Pos, read bool) []heldLock {
	if obj == nil {
		return held
	}
	for _, h := range held {
		if h.obj == obj {
			if !(read && h.read) {
				lw.c.pass.Reportf(lw.pkg, pos, "acquiring %s while already holding it (acquired at line %d); Go mutexes are not reentrant", name, lw.c.line(h.pos))
			}
			return held
		}
	}
	for _, h := range held {
		lw.c.orderEdge(h.obj, h.name, obj, name, lw.pkg, pos)
	}
	return append(cloneHeld(held), heldLock{obj: obj, name: name, pos: pos, read: read})
}

// block reports a blocking operation executed while a lock is held,
// unless the function carries a justified seclint:guards.
func (lw *lockWalker) block(pos token.Pos, desc string, held []heldLock) {
	if len(held) == 0 {
		return
	}
	if g := lw.c.guardsOn(lw.fn); g != nil {
		lw.c.guardsUsed[g] = true
		return
	}
	h := held[len(held)-1]
	kind := "mutex"
	if h.read {
		kind = "read lock"
	}
	msg := fmt.Sprintf("%s %s held across %s (acquired at line %d); shrink the critical section or annotate the function seclint:guards", kind, h.name, desc, lw.c.line(h.pos))
	if trace, ok := lw.c.prog.EntryTrace(lw.fn); ok {
		msg += " [path " + trace + "]"
	}
	lw.c.pass.Reportf(lw.pkg, pos, "%s", msg)
}

// ops scans an expression tree (skipping nested closures) for blocking
// operations, channel close/make sites, and calls whose summaries the
// held set must be checked against.
func (lw *lockWalker) ops(n ast.Node, held []heldLock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lw.block(x.OpPos, "a channel receive", held)
			}
		case *ast.CallExpr:
			lw.call(x, held)
		}
		return true
	})
}

func (lw *lockWalker) call(call *ast.CallExpr, held []heldLock) {
	info := lw.pkg.Info
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			switch f.Name {
			case "close":
				if len(call.Args) == 1 {
					lw.closeSite(call.Args[0], call.Pos(), held)
				}
			case "make":
				lw.makeSite(call)
			}
		case *types.Func:
			lw.moduleOrExternal(call, f.Pos(), obj, held)
		case *types.Var:
			lw.block(call.Pos(), fmt.Sprintf("a call through the func value %s (assumed blocking)", f.Name), held)
		}
	case *ast.SelectorExpr:
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			lw.moduleOrExternal(call, f.Sel.Pos(), obj, held)
			if isOnceDo(obj) && len(call.Args) == 1 {
				lw.executesArg(call.Args[0], call.Pos(), held)
			}
		case *types.Var:
			lw.block(call.Pos(), fmt.Sprintf("a call through the func value %s (assumed blocking)", exprName(f)), held)
		}
	case *ast.FuncLit:
		// A directly-invoked literal runs inline; consult its summary.
		if fn := lw.c.litFn[f]; fn != nil {
			if r := lw.c.blockRoot[fn]; r != "" {
				lw.block(call.Pos(), fmt.Sprintf("a call to %s, which reaches %s", fn.Name, r), held)
			}
		}
	default:
		if t := info.TypeOf(call.Fun); t != nil {
			if _, ok := t.Underlying().(*types.Signature); ok {
				lw.block(call.Pos(), "a call through a func value (assumed blocking)", held)
			}
		}
	}
}

// moduleOrExternal checks one resolved call: module callees are judged
// by their summaries (may-block, re-acquire, acquired-before edges),
// external ones against the blocking table; unresolved interface calls
// fall back to the call graph's dispatch edges.
func (lw *lockWalker) moduleOrExternal(call *ast.CallExpr, selPos token.Pos, obj *types.Func, held []heldLock) {
	c := lw.c
	obj = obj.Origin()
	if fn, ok := c.prog.fns[obj]; ok {
		if fn.Blocking {
			lw.block(call.Pos(), fmt.Sprintf("a call to %s (seclint:blocking)", fn.Name), held)
		} else if r := c.blockRoot[fn]; r != "" {
			lw.block(call.Pos(), fmt.Sprintf("a call to %s, which reaches %s", fn.Name, r), held)
		}
		if acq := c.acquires[fn]; len(acq) > 0 && len(held) > 0 {
			objs := make([]types.Object, 0, len(acq))
			for o := range acq {
				objs = append(objs, o)
			}
			sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
			for _, a := range objs {
				for _, h := range held {
					if h.obj == a {
						c.pass.Reportf(lw.pkg, call.Pos(), "calling %s while holding %s, which it also acquires; the re-acquire deadlocks", fn.Name, h.name)
					} else {
						c.orderEdge(h.obj, h.name, a, a.Name(), lw.pkg, call.Pos())
					}
				}
			}
		}
		return
	}
	if d := blockingExternal(obj); d != "" {
		lw.block(call.Pos(), d, held)
		return
	}
	// An interface method outside the blocking axiom: judge it by the
	// dispatch edges the graph resolved at this position.
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !types.IsInterface(sig.Recv().Type()) {
		return
	}
	for _, e := range lw.fn.Edges {
		if e.Kind == "iface" && e.Pos == selPos {
			if r := c.blockRoot[e.Callee]; r != "" {
				lw.block(call.Pos(), fmt.Sprintf("a call to %s, which reaches %s", e.Callee.Name, r), held)
				return
			}
		}
	}
}

// executesArg handles sync.Once.Do: the argument runs synchronously.
func (lw *lockWalker) executesArg(arg ast.Expr, pos token.Pos, held []heldLock) {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		if fn := lw.c.litFn[a]; fn != nil {
			if r := lw.c.blockRoot[fn]; r != "" {
				lw.block(pos, fmt.Sprintf("a call to %s, which reaches %s", fn.Name, r), held)
			}
		}
	case *ast.Ident:
		if obj, ok := lw.pkg.Info.Uses[a].(*types.Func); ok {
			lw.moduleOrExternal(&ast.CallExpr{Fun: a}, a.Pos(), obj, held)
		}
	case *ast.SelectorExpr:
		if obj, ok := lw.pkg.Info.Uses[a.Sel].(*types.Func); ok {
			lw.moduleOrExternal(&ast.CallExpr{Fun: a}, a.Sel.Pos(), obj, held)
		}
	}
}

func (c *concChecker) chanOf(obj types.Object, name string) *chanFacts {
	if f, ok := c.chans[obj]; ok {
		return f
	}
	f := &chanFacts{name: name}
	c.chans[obj] = f
	c.chanOrder = append(c.chanOrder, obj)
	return f
}

func (lw *lockWalker) closeSite(ch ast.Expr, pos token.Pos, held []heldLock) {
	obj := lockObj(lw.pkg.Info, ch)
	if obj == nil {
		return
	}
	f := lw.c.chanOf(obj, exprName(ch))
	f.closes = append(f.closes, chanSite{fn: lw.fn, pkg: lw.pkg, pos: pos, once: lw.c.onceOf(lw.fn), held: heldObjs(held)})
}

func (lw *lockWalker) sendSite(ch ast.Expr, pos token.Pos, held []heldLock) {
	obj := lockObj(lw.pkg.Info, ch)
	if obj == nil {
		return
	}
	f := lw.c.chanOf(obj, exprName(ch))
	f.sends = append(f.sends, chanSite{fn: lw.fn, pkg: lw.pkg, pos: pos, once: lw.c.onceOf(lw.fn), held: heldObjs(held)})
}

// makeSite enforces the bounded-queue perimeter: a capacity-less make
// of a data channel inside internal/session or internal/parallel.
func (lw *lockWalker) makeSite(call *ast.CallExpr) {
	if len(call.Args) != 1 || !inBoundedPerimeter(lw.pkg.RelDir) {
		return
	}
	t := lw.pkg.Info.TypeOf(call)
	if t == nil {
		return
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return
	}
	elem := ch.Elem()
	if st, ok := elem.Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return // a struct{} signal channel is unbuffered by design
	}
	elemStr := types.TypeString(elem, func(p *types.Package) string { return p.Name() })
	lw.c.pass.Reportf(lw.pkg, call.Pos(), "make(chan %s) without a capacity inside the bounded-queue perimeter (%s); declare an explicit bound, or use chan struct{} for pure signals", elemStr, lw.pkg.RelDir)
}

// ---------------------------------------------------------------------
// Rule 1: goroutine lifecycle

func (c *concChecker) checkSpawns() {
	for _, fn := range c.prog.All {
		for _, e := range fn.Edges {
			if e.Kind != "go" {
				continue
			}
			root := c.divergeRoot[e.Callee]
			if root == "" {
				continue
			}
			trace, ok := c.prog.EntryTrace(fn)
			if !ok {
				continue // outside the party entry perimeter
			}
			if d := c.detachedOn(e.Callee); d != nil {
				c.detachedUsed[d] = true
				continue
			}
			if d := c.detachedOn(fn); d != nil {
				c.detachedUsed[d] = true
				continue
			}
			c.pass.Reportf(fn.Pkg, e.Pos, "goroutine %s has no termination path: %s; give it an exit or annotate the spawned function seclint:detached [path %s]", e.Callee.Name, root, trace)
		}
	}
}

// ---------------------------------------------------------------------
// Rule 3: channel discipline

func (c *concChecker) checkChannels() {
	for _, obj := range c.chanOrder {
		f := c.chans[obj]
		if len(f.closes) > 1 {
			sameOnce := f.closes[0].once != nil
			for _, s := range f.closes {
				if s.once != f.closes[0].once {
					sameOnce = false
				}
			}
			if !sameOnce {
				first := f.closes[0]
				for _, s := range f.closes[1:] {
					c.pass.Reportf(s.pkg, s.pos, "channel %s is closed at more than one site (also at line %d); close from a single owner or under one sync.Once", f.name, c.line(first.pos))
				}
			}
		}
		if len(f.closes) > 0 {
			for _, s := range f.sends {
				if sendProtected(s, f.closes) {
					continue
				}
				c.pass.Reportf(s.pkg, s.pos, "send on channel %s, which is closed at line %d; a send racing that close panics — guard both sites with one mutex or route the send through the closing owner", f.name, c.line(f.closes[0].pos))
			}
		}
	}
}

// sendProtected reports whether some lock held at the send is held at
// every close, serializing the send against the close.
func sendProtected(send chanSite, closes []chanSite) bool {
	for _, o := range send.held {
		all := true
		for _, cl := range closes {
			found := false
			for _, co := range cl.held {
				if co == o {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Lock-order cycles

func (c *concChecker) orderEdge(from types.Object, fromName string, to types.Object, toName string, pkg *Package, pos token.Pos) {
	if from == nil || to == nil || from == to {
		return
	}
	key := [2]types.Object{from, to}
	if c.orderSeen[key] {
		return
	}
	c.orderSeen[key] = true
	c.orderEdges = append(c.orderEdges, orderEdgeRec{from: from, to: to, fromName: fromName, toName: toName, pkg: pkg, pos: pos})
}

// checkOrder finds strongly connected components of the acquired-before
// graph; any component with more than one lock is an ordering cycle.
func (c *concChecker) checkOrder() {
	if len(c.orderEdges) == 0 {
		return
	}
	var nodes []types.Object
	nameOf := make(map[types.Object]string)
	adj := make(map[types.Object][]types.Object)
	seen := make(map[types.Object]bool)
	addNode := func(o types.Object, name string) {
		if !seen[o] {
			seen[o] = true
			nodes = append(nodes, o)
		}
		if nameOf[o] == "" {
			nameOf[o] = name
		}
	}
	for _, e := range c.orderEdges {
		addNode(e.from, e.fromName)
		addNode(e.to, e.toName)
		adj[e.from] = append(adj[e.from], e.to)
	}

	// Iterative Tarjan SCC in deterministic first-seen node order.
	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	var sccs [][]types.Object
	next := 0
	var strong func(v types.Object)
	strong = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}

	for _, comp := range sccs {
		if len(comp) < 2 {
			continue
		}
		member := make(map[types.Object]bool, len(comp))
		for _, o := range comp {
			member[o] = true
		}
		// Report at the first recorded edge inside the component, naming
		// the locks in first-seen order.
		var names []string
		for _, n := range nodes {
			if member[n] {
				names = append(names, nameOf[n])
			}
		}
		for _, e := range c.orderEdges {
			if member[e.from] && member[e.to] {
				c.pass.Reportf(e.pkg, e.pos, "lock-order cycle among %s; acquire these locks in one module-wide order", strings.Join(names, ", "))
				break
			}
		}
	}
}

// ---------------------------------------------------------------------
// Annotation hygiene

func (c *concChecker) checkAnnotations() {
	for _, fn := range c.prog.All {
		if fn.Guards {
			if fn.GuardsWhy == "" {
				c.pass.Reportf(fn.Pkg, fn.Pos, "seclint:guards needs a justification: say why %s must hold a lock across a blocking operation", fn.Name)
			} else if !c.guardsUsed[fn] {
				c.pass.Reportf(fn.Pkg, fn.Pos, "seclint:guards on %s suppresses nothing (no lock is held across a blocking operation); drop the annotation", fn.Name)
			}
		}
		if fn.Detached {
			if fn.DetachedWhy == "" {
				c.pass.Reportf(fn.Pkg, fn.Pos, "seclint:detached needs a justification: say why the %s goroutine may outlive its spawner", fn.Name)
			} else if !c.detachedUsed[fn] {
				c.pass.Reportf(fn.Pkg, fn.Pos, "seclint:detached on %s excuses no goroutine spawn; drop the annotation", fn.Name)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Small shared helpers

// lockObj resolves a lock or channel expression to the object that
// identifies it: the final field in a selector chain, or the variable
// itself. Two mentions of m.sendMu resolve to the same field object, so
// identity is per declared field — conservative across instances.
func lockObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.StarExpr:
		return lockObj(info, e.X)
	case *ast.IndexExpr:
		return lockObj(info, e.X)
	}
	return nil
}

// exprName renders a short receiver-chain name for diagnostics.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprName(e.X); x != "?" {
			return x + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.StarExpr:
		return exprName(e.X)
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.CallExpr:
		return exprName(e.Fun) + "()"
	}
	return "?"
}
