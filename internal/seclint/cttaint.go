package seclint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// cttaint is the suite's timing-side-channel perimeter: no value
// derived from secret key material may shape the program's execution
// trajectory. It is a flow-sensitive, interprocedural value-taint pass
// over the same whole-program graph plaintaint and keyscope use —
// where plaintaint asks "can plaintext reach the mediator" (a
// confidentiality question about WHO sees values), cttaint asks "can
// secret bits steer execution" (an observability question about what
// timing reveals to anyone on the network path).
//
// Taint sources are declared with seclint:secret — on struct fields
// (commutative exponents, Paillier CRT secrets, window schedules), on
// vars, or on functions (secret results, or named secret parameters) —
// plus the structural rule that any value of a seclint:private type is
// secret-bearing. Taint propagates through assignments, composite
// literals, calls (by per-function summaries inside the module,
// pass-through outside it), returns, closures (captured objects are
// shared), field/slice/map access, and conversions, to a fixpoint.
//
// Sinks — each finding carries the full secret→sink def-use path:
//
//   - branch conditions (if, switch, select-free case exprs),
//   - loop bounds (for conditions, range over secret-derived counts),
//   - slice/array subscripts (secret-indexed table lookups),
//   - allocation sizes (make with a secret-derived length), and
//   - the declared variable-time math/big surface (Exp's exponent,
//     Cmp, Bit, BitLen, Jacobi, ModInverse), whose running time is
//     operand-dependent by implementation.
//
// Deliberate precision cuts, chosen so the real tree's findings are
// the genuinely interesting ones:
//
//   - Field-sensitivity: k.group.P is public even though k holds a
//     key; only fields that are themselves secret (annotated, written
//     with secret values, or of private type) taint a selection.
//   - error values never carry taint (err != nil steers control on
//     failure shape, not key bits), and comparisons against nil are
//     public (pointer presence, not value bits).
//   - len/cap of a secret-valued container are public: the module
//     sizes its slices by public parameters, and element count is not
//     element bits. Ranging over a secret slice taints the iteration
//     variables, not the loop bound.
//   - Results of seclint:source / seclint:sanitizer functions are
//     message-domain values (plaintexts, ciphertexts), not key bits;
//     taint stops there exactly like plaintaint's traversal does.
//   - A field write globalizes taint (every later selection of that
//     field is secret) only for fields declared in the module; one
//     pem.Block carrying a private-key DER must not taint every
//     pem.Block selection in the tree.
//   - A call through a local variable bound to a function literal uses
//     the literal's own parameter/result summary; only genuinely
//     unresolvable indirect calls fall back to argument pass-through.
//   - Pass-through helpers are call-site sensitive: a summary result
//     that derives from the callee's own parameter is re-derived from
//     the actual argument at each call site, so a converter fed secret
//     exponents by one caller and public moduli by another taints only
//     the former's results. Closures and variadic fan-in keep the
//     context-insensitive behaviour.
//
// What survives on the real tree is the honest residue: the
// sliding-window schedule machinery in internal/crypto/modexp whose
// variable-time behaviour is a documented design choice — with
// modexp.ExpConstantTime as the machine-checked fixed-trajectory
// alternative — plus key-generation-time inversions. Those live in
// seclint.allow with audit rationales; everything else must be clean.
var Cttaint = &Analyzer{
	Name:       "cttaint",
	Doc:        "no secret key material may steer branches, loop bounds, indices, allocation sizes, or variable-time math/big calls",
	RunProgram: runCttaint,
}

// varTimeSig describes one function outside the module whose running
// time depends on operand bit patterns. Keys of bigVarTime are in
// externalKey form.
type varTimeSig struct {
	// recv marks the receiver as timing-relevant.
	recv bool
	// args lists timing-relevant argument indices.
	args []int
	// what names the relevant operand in findings.
	what string
}

// bigVarTime is the declared variable-time math/big surface: these run
// in time dependent on the listed operands' values (loop per bit or
// word, early exit on mismatch, binary-GCD iteration count).
var bigVarTime = map[string]varTimeSig{
	"(math/big.Int).Exp":              {args: []int{1}, what: "exponent"},
	"(math/big.Int).Cmp":              {recv: true, args: []int{0}, what: "compared value"},
	"(math/big.Int).CmpAbs":           {recv: true, args: []int{0}, what: "compared value"},
	"(math/big.Int).Bit":              {recv: true, what: "bit source"},
	"(math/big.Int).BitLen":           {recv: true, what: "length source"},
	"(math/big.Int).TrailingZeroBits": {recv: true, what: "bit source"},
	"math/big.Jacobi":                 {args: []int{0, 1}, what: "operand"},
	"(math/big.Int).ModInverse":       {args: []int{0, 1}, what: "operand"},
}

// ctCause is one hop of a secret→sink def-use chain. prev points
// toward the root (the annotated source); nil prev is the root.
type ctCause struct {
	desc string
	prev *ctCause
	// paramOf/paramIdx mark the hop where taint entered a declared
	// function through its own parameter (receiver-first index),
	// seeded only by seedParams from call-site-accumulated taint.
	// deriveResult keys on these markers to re-derive a pass-through
	// result from the actual argument at each call site.
	paramOf  *types.Func
	paramIdx int
}

// paramMarker returns the hop (nearest the sink) where chain c entered
// fn through one of fn's own parameters, or nil if c does not depend on
// them. fn must be non-nil.
func paramMarker(c *ctCause, fn *types.Func) *ctCause {
	for ; c != nil; c = c.prev {
		if c.paramOf == fn {
			return c
		}
	}
	return nil
}

// root returns the chain's origin — the annotated source description.
func (c *ctCause) root() string {
	for c.prev != nil {
		c = c.prev
	}
	return c.desc
}

// path renders the chain root→sink, compressing repeats and eliding
// the middle of very deep chains.
func (c *ctCause) path() string {
	var hops []string
	for n := c; n != nil; n = n.prev {
		if len(hops) == 0 || hops[len(hops)-1] != n.desc {
			hops = append(hops, n.desc)
		}
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	if len(hops) > 12 {
		hops = append(append(hops[:6:6], "..."), hops[len(hops)-5:]...)
	}
	return strings.Join(hops, " -> ")
}

// ctSummary is the interprocedural fact sheet of one declared
// function: which parameter positions have received taint from any
// call site (receiver first), and which result positions return taint.
type ctSummary struct {
	// owner is the declared function this summary describes; nil for
	// function literals (closures keep context-insensitive summaries).
	owner  *types.Func
	pTaint []*ctCause
	rTaint []*ctCause
}

// ctState is the whole-program fixpoint state.
type ctState struct {
	pass *ProgramPass
	p    *Program
	// taint maps every secret-carrying object (vars, params, fields)
	// to its first-discovered cause; set-once makes the fixpoint
	// monotone and the cause chains acyclic.
	taint map[types.Object]*ctCause
	sums  map[*types.Func]*ctSummary
	// lits maps local func-typed variables to the function literal
	// bound to them (pool := func(...){...}), so calls through them get
	// real summaries (litSums) instead of worst-case pass-through.
	lits    map[types.Object]*ast.FuncLit
	litSums map[*ast.FuncLit]*ctSummary
	// inModule marks the module's own type-checker packages: field
	// writes globalize only for fields declared in the module — one
	// pem.Block carrying a private-key DER must not taint every
	// pem.Block selection in the tree.
	inModule map[*types.Package]bool
	// changed is the fixpoint dirty bit.
	changed bool
	// report switches the final pass from propagation to sink checks.
	report bool
	seen   map[string]bool
}

func runCttaint(pass *ProgramPass) {
	s := &ctState{
		pass:     pass,
		p:        pass.Program,
		taint:    make(map[types.Object]*ctCause),
		sums:     make(map[*types.Func]*ctSummary),
		lits:     make(map[types.Object]*ast.FuncLit),
		litSums:  make(map[*ast.FuncLit]*ctSummary),
		inModule: make(map[*types.Package]bool),
		seen:     make(map[string]bool),
	}
	for _, pkg := range s.p.Pkgs {
		if pkg.Types != nil {
			s.inModule[pkg.Types] = true
		}
	}
	s.collectAnnotations()
	// Propagate to a fixpoint. Every step only ever adds taint (objects,
	// summary slots), so the pass count is bounded by the object count;
	// the cap is a safety net, generous beyond any real chain depth.
	for i := 0; i < 64; i++ {
		s.changed = false
		s.walkAll()
		if !s.changed {
			break
		}
	}
	s.report = true
	s.walkAll()
}

// collectAnnotations seeds the taint map from seclint:secret on struct
// fields and vars, and reports misplaced annotations. Function-level
// seclint:secret is parsed by the graph builder (Fn.SecretResults /
// Fn.SecretParams) and applied during the walk.
func (s *ctState) collectAnnotations() {
	for _, pkg := range s.p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			s.collectFile(pkg, file)
		}
	}
}

func (s *ctState) collectFile(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok {
			return true
		}
		switch gd.Tok {
		case token.TYPE:
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					s.collectFields(pkg, ts.Name.Name, st)
				}
			}
		case token.VAR:
			s.collectVars(pkg, gd)
		case token.CONST:
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, ann := range specAnnotations(gd, vs) {
					if ann.Kind == annSecret {
						s.misuse(pkg, vs.Pos(), "seclint:secret belongs on a var, struct field, or function, not a const (constants are compile-time public)")
					}
				}
			}
		}
		return true
	})
}

// specAnnotations merges the decl-level and spec-level doc comments of
// one spec in a grouped declaration.
func specAnnotations(gd *ast.GenDecl, vs *ast.ValueSpec) []annotation {
	anns := parseAnnotations(vs.Doc)
	anns = append(anns, parseAnnotations(vs.Comment)...)
	if len(gd.Specs) == 1 {
		anns = append(anns, parseAnnotations(gd.Doc)...)
	}
	return anns
}

func (s *ctState) collectFields(pkg *Package, typeName string, st *ast.StructType) {
	for _, f := range st.Fields.List {
		anns := parseAnnotations(f.Doc)
		anns = append(anns, parseAnnotations(f.Comment)...)
		for _, ann := range anns {
			if ann.Kind != annSecret {
				s.misuse(pkg, f.Pos(), fmt.Sprintf("seclint:%s is not a field annotation", ann.Kind))
				continue
			}
			for _, name := range f.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				desc := fmt.Sprintf("secret field %s.%s.%s", pkgName(pkg), typeName, name.Name)
				if ann.Text != "" {
					desc += " (" + ann.Text + ")"
				}
				s.setTaint(obj, &ctCause{desc: desc})
			}
			if len(f.Names) == 0 {
				s.misuse(pkg, f.Pos(), "seclint:secret on an embedded field is not supported; annotate the embedded type's own fields")
			}
		}
	}
}

func (s *ctState) collectVars(pkg *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, ann := range specAnnotations(gd, vs) {
			if ann.Kind != annSecret {
				continue
			}
			for _, name := range vs.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				desc := fmt.Sprintf("secret var %s.%s", pkgName(pkg), name.Name)
				if ann.Text != "" {
					desc += " (" + ann.Text + ")"
				}
				s.setTaint(obj, &ctCause{desc: desc})
			}
		}
	}
}

func (s *ctState) misuse(pkg *Package, pos token.Pos, msg string) {
	// Annotation misuse is reported once, during collection (which runs
	// exactly once), so no dedup is needed here.
	s.pass.Reportf(pkg, pos, "%s", msg)
}

func pkgName(pkg *Package) string {
	if pkg.Types != nil {
		return pkg.Types.Name()
	}
	return pkg.ImportPath
}

// setTaint records the first cause taint reaches obj with. Errors are
// exempt by policy; set-once keeps the fixpoint monotone.
func (s *ctState) setTaint(obj types.Object, c *ctCause) {
	if obj == nil || c == nil {
		return
	}
	if _, ok := s.taint[obj]; ok {
		return
	}
	if isErrorType(obj.Type()) {
		return
	}
	s.taint[obj] = c
	s.changed = true
}

// moduleObj reports whether obj is declared inside the module.
func (s *ctState) moduleObj(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && s.inModule[obj.Pkg()]
}

// litSummaryFor returns (creating empty) the summary of one function
// literal.
func (s *ctState) litSummaryFor(pkg *Package, lit *ast.FuncLit) *ctSummary {
	if sum, ok := s.litSums[lit]; ok {
		return sum
	}
	sum := &ctSummary{}
	if sig, ok := pkg.Info.TypeOf(lit).(*types.Signature); ok {
		sum.pTaint = make([]*ctCause, sig.Params().Len())
		sum.rTaint = make([]*ctCause, sig.Results().Len())
	}
	s.litSums[lit] = sum
	return sum
}

// seedLitParams taints a literal's parameter objects from taint its
// call sites accumulated on the summary.
func (s *ctState) seedLitParams(pkg *Package, lit *ast.FuncLit, sum *ctSummary) {
	i := 0
	for _, f := range lit.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, name := range f.Names {
			if i < len(sum.pTaint) && sum.pTaint[i] != nil && name.Name != "_" {
				if obj := pkg.Info.Defs[name]; obj != nil {
					s.setTaint(obj, &ctCause{desc: "param " + name.Name + " of closure", prev: sum.pTaint[i]})
				}
			}
			i++
		}
	}
}

// summaryFor returns (creating empty) the summary of one declared
// function, receiver-first.
func (s *ctState) summaryFor(obj *types.Func) *ctSummary {
	if sum, ok := s.sums[obj]; ok {
		return sum
	}
	sig, _ := obj.Type().(*types.Signature)
	sum := &ctSummary{owner: obj}
	if sig != nil {
		n := sig.Params().Len()
		if sig.Recv() != nil {
			n++
		}
		sum.pTaint = make([]*ctCause, n)
		sum.rTaint = make([]*ctCause, sig.Results().Len())
	}
	s.sums[obj] = sum
	return sum
}

func (s *ctState) setParamTaint(sum *ctSummary, i int, c *ctCause) {
	if c == nil || i < 0 || i >= len(sum.pTaint) || sum.pTaint[i] != nil {
		return
	}
	sum.pTaint[i] = c
	s.changed = true
}

func (s *ctState) setResultTaint(sum *ctSummary, i int, c *ctCause) {
	if c == nil || i < 0 || i >= len(sum.rTaint) {
		return
	}
	if old := sum.rTaint[i]; old != nil {
		// One-way upgrade: a result tainted unconditionally (from a
		// global or an annotated source) must not stay masked by an
		// earlier param-conditional cause, or call sites passing public
		// arguments would wrongly re-derive the result to clean.
		if sum.owner == nil || paramMarker(old, sum.owner) == nil || paramMarker(c, sum.owner) != nil {
			return
		}
	}
	sum.rTaint[i] = c
	s.changed = true
}

// walkAll runs one propagation (or reporting) pass over every function
// body in deterministic package/file order.
func (s *ctState) walkAll() {
	for _, pkg := range s.p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if obj == nil {
					continue
				}
				s.walkFunc(pkg, d, obj)
			}
		}
	}
}

func (s *ctState) walkFunc(pkg *Package, d *ast.FuncDecl, obj *types.Func) {
	sum := s.summaryFor(obj)
	fn := s.p.fns[obj]
	if fn != nil && (fn.Source || fn.Sanitizer) {
		// Declared boundaries are the audited declassification points:
		// like plaintaint, the traversal does not descend into their
		// bodies, and their results are clean at every call site.
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil {
		s.seedParams(sig, sum, fn, obj)
	}
	w := &ctWalker{s: s, pkg: pkg, sig: sig, sum: sum, fn: fn}
	w.walk(d.Body)
}

// seedParams taints parameter objects from seclint:secret param
// annotations and from taint accumulated at call sites. The signature's
// parameter variables ARE the declaration's defined objects, so body
// uses resolve to the same objects.
func (s *ctState) seedParams(sig *types.Signature, sum *ctSummary, fn *Fn, obj *types.Func) {
	vars := make([]*types.Var, 0, len(sum.pTaint))
	if sig.Recv() != nil {
		vars = append(vars, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		vars = append(vars, sig.Params().At(i))
	}
	name := shortFuncName(obj)
	for i, v := range vars {
		if v == nil || v.Name() == "" || v.Name() == "_" {
			continue
		}
		if fn != nil {
			for _, sp := range fn.SecretParams {
				if sp == v.Name() {
					s.setTaint(v, &ctCause{desc: fmt.Sprintf("secret param %s of %s", v.Name(), name)})
				}
			}
		}
		if i < len(sum.pTaint) && sum.pTaint[i] != nil {
			s.setTaint(v, &ctCause{desc: fmt.Sprintf("param %s of %s", v.Name(), name), prev: sum.pTaint[i], paramOf: obj, paramIdx: i})
		}
	}
}

// ctWalker propagates taint through one function body (and reports
// sinks on the final pass). sum is nil inside function literals: a
// closure's returns do not feed the enclosing declaration's summary,
// while its captured objects are shared through the global taint map.
type ctWalker struct {
	s   *ctState
	pkg *Package
	sig *types.Signature
	sum *ctSummary
	fn  *Fn
}

func (w *ctWalker) walk(body ast.Node) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sum := w.s.litSummaryFor(w.pkg, n)
			sig, _ := w.pkg.Info.TypeOf(n).(*types.Signature)
			w.s.seedLitParams(w.pkg, n, sum)
			inner := &ctWalker{s: w.s, pkg: w.pkg, sig: sig, sum: sum, fn: w.fn}
			inner.walk(n.Body)
			return false
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				w.varDecl(n)
			}
		case *ast.ReturnStmt:
			w.returnStmt(n)
		case *ast.RangeStmt:
			w.rangeStmt(n)
		case *ast.CompositeLit:
			w.compositeLit(n)
		case *ast.CallExpr:
			w.call(n)
		case *ast.IfStmt:
			w.condSink(n.Cond, "branch", "condition")
		case *ast.ForStmt:
			w.condSink(n.Cond, "loop", "bound")
		case *ast.SwitchStmt:
			if n.Tag != nil {
				w.condSink(n.Tag, "branch", "switch tag")
			} else {
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						w.condSink(e, "branch", "case expression")
					}
				}
			}
		case *ast.IndexExpr:
			w.indexSink(n)
		}
		return true
	})
}

// assign transfers taint right→left. Compound assignments (+=, …) and
// plain/define assignments share the rule: a tainted right-hand side
// taints the target object.
func (w *ctWalker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		for i, c := range w.multiTaint(n.Rhs[0], len(n.Lhs)) {
			w.taintTarget(n.Lhs[i], c)
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			w.registerLit(lhs, n.Rhs[i])
			w.taintTarget(lhs, w.exprTaint(n.Rhs[i]))
		}
	}
}

// registerLit records a variable directly bound to a function literal,
// so later calls through it resolve to the literal's summary.
func (w *ctWalker) registerLit(lhs, rhs ast.Expr) {
	lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
	if !ok {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.pkg.Info.Defs[id]
	if obj == nil {
		obj = w.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, ok := w.s.lits[obj]; !ok {
		w.s.lits[obj] = lit
	}
}

// litCallee resolves a call through a literal-bound variable.
func (w *ctWalker) litCallee(n *ast.CallExpr) *ast.FuncLit {
	id, ok := ast.Unparen(n.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return w.s.lits[obj]
}

func (w *ctWalker) varDecl(n *ast.GenDecl) {
	for _, spec := range n.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Names) > 1 && len(vs.Values) == 1 {
			for i, c := range w.multiTaint(vs.Values[0], len(vs.Names)) {
				w.taintTarget(vs.Names[i], c)
			}
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				w.registerLit(name, vs.Values[i])
				w.taintTarget(name, w.exprTaint(vs.Values[i]))
			}
		}
	}
}

// taintTarget taints the object behind an assignment target: an
// identifier, a field selection (which taints the field object for
// every instance — fields are global facts), or the base container of
// an index/star/slice expression.
func (w *ctWalker) taintTarget(lhs ast.Expr, c *ctCause) {
	if c == nil {
		return
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := w.pkg.Info.Defs[lhs]
		if obj == nil {
			obj = w.pkg.Info.Uses[lhs]
		}
		if obj != nil {
			w.s.setTaint(obj, &ctCause{desc: lhs.Name, prev: c})
		}
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			// Field taint is a global fact, so it globalizes only for
			// module-declared fields: writing a key DER into one
			// pem.Block must not taint every pem.Block in the tree.
			if w.s.moduleObj(sel.Obj()) {
				w.s.setTaint(sel.Obj(), &ctCause{desc: "field " + lhs.Sel.Name, prev: c})
			}
			return
		}
		// Qualified package-level var.
		if obj := w.pkg.Info.Uses[lhs.Sel]; obj != nil {
			w.s.setTaint(obj, &ctCause{desc: lhs.Sel.Name, prev: c})
		}
	case *ast.IndexExpr:
		w.taintTarget(lhs.X, c)
	case *ast.StarExpr:
		w.taintTarget(lhs.X, c)
	case *ast.SliceExpr:
		w.taintTarget(lhs.X, c)
	}
}

// returnStmt feeds the enclosing declaration's result summary.
func (w *ctWalker) returnStmt(n *ast.ReturnStmt) {
	if w.sum == nil || w.sig == nil {
		return
	}
	res := w.sig.Results()
	wrap := func(c *ctCause) *ctCause {
		if c == nil {
			return nil
		}
		return &ctCause{desc: "returned", prev: c}
	}
	switch {
	case len(n.Results) == 0:
		// Naked return: named result objects carry the taint.
		for i := 0; i < res.Len(); i++ {
			if c, ok := w.s.taint[res.At(i)]; ok {
				w.s.setResultTaint(w.sum, i, wrap(c))
			}
		}
	case len(n.Results) == res.Len():
		for i, e := range n.Results {
			if isErrorType(res.At(i).Type()) {
				continue
			}
			w.s.setResultTaint(w.sum, i, wrap(w.exprTaint(e)))
		}
	case len(n.Results) == 1:
		// return f() forwarding a multi-value call.
		for i, c := range w.multiTaint(n.Results[0], res.Len()) {
			if !isErrorType(res.At(i).Type()) {
				w.s.setResultTaint(w.sum, i, wrap(c))
			}
		}
	}
}

// rangeStmt taints the iteration variables when the ranged container
// is secret-derived, and treats a secret-derived *count* (range over
// an integer) as a loop-bound sink: element count is public for
// containers, but an integer IS its own bit pattern.
func (w *ctWalker) rangeStmt(n *ast.RangeStmt) {
	cx := w.exprTaint(n.X)
	if cx == nil {
		return
	}
	t := w.pkg.Info.TypeOf(n.X)
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		w.sink(n.X.Pos(), "loop", "iteration count", cx)
		return
	}
	keySecret := false
	if _, ok := t.Underlying().(*types.Map); ok {
		keySecret = true // map keys are element values
	}
	wrapped := &ctCause{desc: "range element", prev: cx}
	if n.Key != nil && keySecret {
		w.taintTarget(n.Key, wrapped)
	}
	if n.Value != nil {
		w.taintTarget(n.Value, wrapped)
	}
}

// compositeLit records secret-valued literal elements on their field
// objects, so Key{e: secret} taints Key.e for every later selection.
func (w *ctWalker) compositeLit(n *ast.CompositeLit) {
	t := w.pkg.Info.TypeOf(n)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range n.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			c := w.exprTaint(kv.Value)
			if c == nil {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok {
				if fobj, ok := w.pkg.Info.Uses[key].(*types.Var); ok && w.s.moduleObj(fobj) {
					w.s.setTaint(fobj, &ctCause{desc: "field " + key.Name, prev: c})
				}
			}
			continue
		}
		if c := w.exprTaint(el); c != nil && i < st.NumFields() && w.s.moduleObj(st.Field(i)) {
			w.s.setTaint(st.Field(i), &ctCause{desc: "field " + st.Field(i).Name(), prev: c})
		}
	}
}

// call propagates argument taint into module callees' summaries and,
// on the reporting pass, checks the call-shaped sinks (variable-time
// math/big operands, make sizes).
func (w *ctWalker) call(n *ast.CallExpr) {
	if tv, ok := w.pkg.Info.Types[n.Fun]; ok && tv.IsType() {
		return // conversion
	}
	obj, recv := w.callee(n)
	if obj == nil {
		if lit := w.litCallee(n); lit != nil {
			sum := w.s.litSummaryFor(w.pkg, lit)
			for i, a := range n.Args {
				c := w.exprTaint(a)
				if c == nil {
					continue
				}
				pi := i
				if pi >= len(sum.pTaint) {
					if len(sum.pTaint) == 0 {
						continue
					}
					pi = len(sum.pTaint) - 1
				}
				w.s.setParamTaint(sum, pi, &ctCause{desc: "arg to closure", prev: c})
			}
			return
		}
		if b := w.builtin(n); b == "make" && w.s.report {
			for _, a := range n.Args[1:] {
				if c := w.exprTaint(a); c != nil {
					w.sink(a.Pos(), "allocation", "size", c)
				}
			}
		}
		return
	}
	origin := obj.Origin()
	if fnNode, ok := w.s.p.fns[origin]; ok {
		// Module callee: accumulate argument taint on its summary.
		sum := w.s.summaryFor(origin)
		sig, _ := origin.Type().(*types.Signature)
		if sig == nil {
			return
		}
		idx := 0
		if sig.Recv() != nil {
			idx = 1
			if recv != nil {
				if c := w.exprTaint(recv); c != nil {
					w.s.setParamTaint(sum, 0, &ctCause{desc: "receiver of " + fnNode.Name, prev: c})
				}
			}
		}
		for i, a := range n.Args {
			c := w.exprTaint(a)
			if c == nil {
				continue
			}
			pi := idx + i
			if pi >= len(sum.pTaint) {
				if !sig.Variadic() || len(sum.pTaint) == 0 {
					continue
				}
				pi = len(sum.pTaint) - 1
			}
			w.s.setParamTaint(sum, pi, &ctCause{desc: "arg to " + fnNode.Name, prev: c})
		}
		return
	}
	if !w.s.report {
		return
	}
	// External callee: check the variable-time table.
	vtName := externalKey(origin)
	vt, ok := bigVarTime[vtName]
	if !ok {
		return
	}
	if vt.recv && recv != nil {
		if c := w.exprTaint(recv); c != nil {
			w.s.reportSink(w.pkg, n.Pos(), fmt.Sprintf(
				"variable-time %s: %s derives from %s [path %s]",
				vtName, vt.what, c.root(), c.path()))
		}
	}
	for _, ai := range vt.args {
		if ai >= len(n.Args) {
			continue
		}
		if c := w.exprTaint(n.Args[ai]); c != nil {
			w.s.reportSink(w.pkg, n.Args[ai].Pos(), fmt.Sprintf(
				"variable-time %s: %s derives from %s [path %s]",
				vtName, vt.what, c.root(), c.path()))
		}
	}
}

// condSink reports a control-flow sink on the reporting pass.
func (w *ctWalker) condSink(cond ast.Expr, kind, role string) {
	if cond == nil || !w.s.report {
		return
	}
	if c := w.exprTaint(cond); c != nil {
		w.sink(cond.Pos(), kind, role, c)
	}
}

// indexSink flags secret subscripts into slices and arrays — the
// memory-access pattern then keys on secret bits (cache-timing
// leakage). Map subscripts are hash-routed, not positional, and stay
// out of scope here.
func (w *ctWalker) indexSink(n *ast.IndexExpr) {
	if !w.s.report {
		return
	}
	tv, ok := w.pkg.Info.Types[n.X]
	if !ok || !tv.IsValue() {
		return // generic instantiation, not a subscript
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array:
	default:
		return
	}
	if c := w.exprTaint(n.Index); c != nil {
		w.sink(n.Index.Pos(), "index", "slice subscript", c)
	}
}

func (w *ctWalker) sink(pos token.Pos, kind, role string, c *ctCause) {
	w.s.reportSink(w.pkg, pos, fmt.Sprintf(
		"secret-dependent %s: %s derives from %s [path %s]",
		kind, role, c.root(), c.path()))
}

func (s *ctState) reportSink(pkg *Package, pos token.Pos, msg string) {
	key := fmt.Sprintf("%d|%s", pos, msg)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.pass.Reportf(pkg, pos, "%s", msg)
}

// callee resolves a call to its static *types.Func and receiver
// expression (nil for package functions and unresolved callees).
func (w *ctWalker) callee(n *ast.CallExpr) (*types.Func, ast.Expr) {
	switch f := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		if fo, ok := w.pkg.Info.Uses[f].(*types.Func); ok {
			return fo, nil
		}
	case *ast.SelectorExpr:
		if fo, ok := w.pkg.Info.Uses[f.Sel].(*types.Func); ok {
			if sig, ok := fo.Type().(*types.Signature); ok && sig.Recv() != nil {
				return fo, f.X
			}
			return fo, nil
		}
	}
	return nil, nil
}

// builtin returns the name of the builtin a call invokes, or "".
func (w *ctWalker) builtin(n *ast.CallExpr) string {
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// multiTaint computes per-position taint of a multi-value expression
// (call, type assertion, map index) assigned to n targets.
func (w *ctWalker) multiTaint(rhs ast.Expr, n int) []*ctCause {
	out := make([]*ctCause, n)
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		// v, ok := x.(T) / m[k]: position 0 carries the value's taint,
		// position 1 is a public bool.
		out[0] = w.exprTaint(rhs)
		return out
	}
	obj, recv := w.callee(call)
	if obj != nil {
		origin := obj.Origin()
		if fnNode, ok := w.s.p.fns[origin]; ok {
			if fnNode.Source || fnNode.Sanitizer {
				return out // message-domain boundary, see package doc
			}
			sig, _ := origin.Type().(*types.Signature)
			if fnNode.SecretResults {
				for i := 0; i < n; i++ {
					if sig != nil && i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
						continue
					}
					out[i] = &ctCause{desc: "secret result of " + fnNode.Name + " (" + fnNode.SecretWhy + ")"}
				}
				return out
			}
			sum := w.s.summaryFor(origin)
			for i := 0; i < n && i < len(sum.rTaint); i++ {
				if sum.rTaint[i] == nil {
					continue
				}
				if rc := w.deriveResult(call, recv, origin, sum.rTaint[i]); rc != nil {
					out[i] = &ctCause{desc: "result of " + fnNode.Name, prev: rc}
				}
			}
			return out
		}
	}
	if obj == nil {
		if lit := w.litCallee(call); lit != nil {
			sum := w.s.litSummaryFor(w.pkg, lit)
			for i := 0; i < n && i < len(sum.rTaint); i++ {
				if sum.rTaint[i] != nil {
					out[i] = &ctCause{desc: "result of closure", prev: sum.rTaint[i]}
				}
			}
			return out
		}
	}
	// External or unresolved callee: pass-through, skipping error
	// positions.
	c := w.exprTaint(call)
	if c == nil {
		return out
	}
	tv, ok := w.pkg.Info.Types[call]
	var tuple *types.Tuple
	if ok {
		tuple, _ = tv.Type.(*types.Tuple)
	}
	for i := 0; i < n; i++ {
		if tuple != nil && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
			continue
		}
		out[i] = c
	}
	return out
}

// exprTaint computes the taint of one expression.
func (w *ctWalker) exprTaint(e ast.Expr) *ctCause {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := w.pkg.Info.Uses[e]
		if obj == nil {
			obj = w.pkg.Info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		if c, ok := w.s.taint[obj]; ok {
			return c
		}
		if v, ok := obj.(*types.Var); ok {
			if why, ok := w.s.p.containsPrivate(v.Type()); ok {
				return &ctCause{desc: fmt.Sprintf("%s (value of private type %s)", e.Name, why)}
			}
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[e]; ok {
			if sel.Kind() != types.FieldVal {
				return nil // method value: not a data read
			}
			// Field-sensitive: the selection is secret iff the FIELD is —
			// annotated, written with secret values somewhere, or of a
			// private type. The base being secret does not leak into
			// public fields (k.group.P is public arithmetic context).
			fobj := sel.Obj()
			if c, ok := w.s.taint[fobj]; ok {
				return c
			}
			if why, ok := w.s.p.containsPrivate(fobj.Type()); ok {
				return &ctCause{desc: fmt.Sprintf("%s (field of private type %s)", e.Sel.Name, why)}
			}
			return nil
		}
		return w.exprTaint(e.Sel) // qualified identifier
	case *ast.ParenExpr:
		return w.exprTaint(e.X)
	case *ast.StarExpr:
		return w.exprTaint(e.X)
	case *ast.UnaryExpr:
		return w.exprTaint(e.X)
	case *ast.BinaryExpr:
		// Comparisons against nil observe presence, not bits.
		if (e.Op == token.EQL || e.Op == token.NEQ) && (w.isNil(e.X) || w.isNil(e.Y)) {
			return nil
		}
		if c := w.exprTaint(e.X); c != nil {
			return c
		}
		return w.exprTaint(e.Y)
	case *ast.IndexExpr:
		if tv, ok := w.pkg.Info.Types[e.X]; !ok || !tv.IsValue() {
			return nil // generic instantiation
		}
		// Elements of a secret container are secret; so is a value
		// selected by a secret subscript (tab[d] correlates with d).
		if c := w.exprTaint(e.X); c != nil {
			return &ctCause{desc: "element", prev: c}
		}
		if c := w.exprTaint(e.Index); c != nil {
			return &ctCause{desc: "secret-indexed element", prev: c}
		}
		return nil
	case *ast.IndexListExpr:
		return nil // generic instantiation
	case *ast.SliceExpr:
		return w.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return w.exprTaint(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c := w.exprTaint(el); c != nil {
				return c
			}
		}
		return nil
	case *ast.CallExpr:
		return w.callTaint(e)
	}
	return nil
}

func (w *ctWalker) isNil(e ast.Expr) bool {
	tv, ok := w.pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// deriveResult contextualizes one summary result cause at a call site.
// A chain that enters the callee through its own parameter (a marker
// seeded by seedParams) describes a pass-through: the result is secret
// only when THIS call's actual argument is, so the cause is re-derived
// from the actual. That keeps one secret caller (the CT ladder handing
// wordsOf an exponent) from smearing taint onto every public caller
// (the kernels handing it a modulus). Closures keep context-insensitive
// summaries, and positions that do not map 1:1 onto an actual (method
// expressions, variadic fan-in) stay conservative.
func (w *ctWalker) deriveResult(n *ast.CallExpr, recv ast.Expr, origin *types.Func, c *ctCause) *ctCause {
	marker := paramMarker(c, origin)
	if marker == nil {
		return c
	}
	arg := w.argAt(n, recv, origin, marker.paramIdx)
	if arg == nil {
		return c
	}
	ac := w.exprTaint(arg)
	if ac == nil {
		return nil
	}
	// Re-root the intra-callee prefix of the chain on the actual
	// argument's cause; the marker is spent (resolved at this site), so
	// the rebuilt hop drops it.
	var prefix []*ctCause
	for m := c; m != marker; m = m.prev {
		prefix = append(prefix, m)
	}
	out := &ctCause{desc: marker.desc, prev: ac}
	for i := len(prefix) - 1; i >= 0; i-- {
		out = &ctCause{desc: prefix[i].desc, prev: out}
	}
	return out
}

// argAt maps a receiver-first parameter index to the call's actual
// expression, or nil when the mapping is not 1:1.
func (w *ctWalker) argAt(n *ast.CallExpr, recv ast.Expr, origin *types.Func, idx int) ast.Expr {
	sig, _ := origin.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	if sig.Recv() != nil {
		if idx == 0 {
			return recv
		}
		idx--
	}
	if idx < 0 || idx >= len(n.Args) {
		return nil
	}
	if sig.Variadic() && idx >= sig.Params().Len()-1 && len(n.Args) != sig.Params().Len() {
		return nil
	}
	return n.Args[idx]
}

// callTaint computes the merged (any-result) taint of a call in
// single-value position.
func (w *ctWalker) callTaint(n *ast.CallExpr) *ctCause {
	if tv, ok := w.pkg.Info.Types[n.Fun]; ok && tv.IsType() {
		if len(n.Args) == 1 {
			return w.exprTaint(n.Args[0]) // conversion preserves bits
		}
		return nil
	}
	switch w.builtin(n) {
	case "len", "cap":
		// Container sizes are public parameters in this module; an
		// integer's "length" sink is the BitLen entry instead.
		return nil
	case "append", "min", "max":
		for _, a := range n.Args {
			if c := w.exprTaint(a); c != nil {
				return c
			}
		}
		return nil
	case "":
		// Not a builtin; fall through to function-call handling.
	default:
		return nil
	}
	obj, recv := w.callee(n)
	if obj != nil {
		origin := obj.Origin()
		if fnNode, ok := w.s.p.fns[origin]; ok {
			if fnNode.Source || fnNode.Sanitizer {
				// Decryption/encryption outputs are message-domain
				// values, not key bits: the timing perimeter stops at
				// the same audited boundaries plaintaint trusts.
				return nil
			}
			if fnNode.SecretResults {
				return &ctCause{desc: "secret result of " + fnNode.Name + " (" + fnNode.SecretWhy + ")"}
			}
			sum := w.s.summaryFor(origin)
			for _, c := range sum.rTaint {
				if c == nil {
					continue
				}
				if rc := w.deriveResult(n, recv, origin, c); rc != nil {
					return &ctCause{desc: "result of " + fnNode.Name, prev: rc}
				}
			}
			return nil
		}
		// External call: pass-through — stdlib arithmetic preserves
		// secret bits (Bytes, Add, Mod, …). Error-only results are
		// filtered by setTaint/multiTaint.
		if sig, ok := origin.Type().(*types.Signature); ok {
			allErr := sig.Results().Len() > 0
			for i := 0; i < sig.Results().Len(); i++ {
				if !isErrorType(sig.Results().At(i).Type()) {
					allErr = false
				}
			}
			if allErr {
				return nil
			}
		}
		if recv != nil {
			if c := w.exprTaint(recv); c != nil {
				return &ctCause{desc: "via " + origin.Name(), prev: c}
			}
		}
		for _, a := range n.Args {
			if c := w.exprTaint(a); c != nil {
				return &ctCause{desc: "via " + origin.Name(), prev: c}
			}
		}
		return nil
	}
	// Literal-bound callee: trust the literal's summary.
	if lit := w.litCallee(n); lit != nil {
		for _, c := range w.s.litSummaryFor(w.pkg, lit).rTaint {
			if c != nil {
				return &ctCause{desc: "result of closure", prev: c}
			}
		}
		return nil
	}
	// Unresolved callee (func value): pass-through on arguments.
	for _, a := range n.Args {
		if c := w.exprTaint(a); c != nil {
			return &ctCause{desc: "via indirect call", prev: c}
		}
	}
	return nil
}
