package seclint

import (
	"go/ast"
	"strings"
)

// The seclint annotation convention marks the role boundaries the call
// graph cannot infer on its own. A doc-comment line of the form
//
//	// seclint:<kind> <text>
//
// attaches a machine-readable fact to the declaration it documents.
// The kinds, and where they are legal:
//
//	seclint:source <why>       on a func: its results (or the values it
//	                           hands out) are plaintext — decryption
//	                           outputs, tuple materialization, plaintext
//	                           joins. Reaching one from a mediator entry
//	                           point is a plaintaint finding.
//	seclint:sanitizer <why>    on a func: an audited encrypt boundary.
//	                           Taint traversal does not descend into it,
//	                           so a decrypt inside (e.g. re-encryption)
//	                           is accepted as declared trust.
//	seclint:entry <role>       on a func: a protocol entry point of the
//	                           named role; "mediator" entries seed the
//	                           mediator-reachability analysis. Exported
//	                           methods of internal/mediation.Mediator
//	                           are entries automatically.
//	seclint:private <why>      on a type: the type holds private-key
//	                           material; keyscope confines it.
//	seclint:boundary <party>   on a named func type: calling a value of
//	                           this type crosses a link to the named
//	                           party, so the static call graph correctly
//	                           ends there (e.g. mediation.Dialer).
//	seclint:wire <why>         on a func: its arguments are gob-encoded
//	                           onto a transport link; keyscope checks
//	                           every argument type at every call site.
//	seclint:secret <what>      on a struct field or var: the value is
//	                           secret key material whose bits must not
//	                           shape execution timing (cttaint seeds its
//	                           value-taint here). On a func: if every
//	                           whitespace-separated word of <what> names
//	                           a parameter, those parameters are secret;
//	                           otherwise the function's results are.
//	seclint:guards <why>       on a func: it deliberately holds a lock
//	                           across a blocking operation — an audited
//	                           serialization point (e.g. one frame at a
//	                           time onto a shared link). conccheck
//	                           suppresses its lock-across-blocking rule
//	                           inside and requires the justification.
//	seclint:detached <why>     on a func: its goroutine intentionally
//	                           outlives supervision (a process-lifetime
//	                           pump). conccheck accepts spawning it, and
//	                           any spawn made inside it, without a
//	                           termination proof.
//	seclint:blocking <why>     on a func: calling it may block on a
//	                           waiting primitive the analysis cannot see
//	                           (e.g. behind an interface or cgo-shaped
//	                           boundary); conccheck adds it to the
//	                           blocking table.
//
// Unknown kinds and kinds on the wrong declaration form are themselves
// reported (by plaintaint, cttaint and conccheck), so the convention
// cannot drift silently.
const (
	annSource    = "source"
	annSanitizer = "sanitizer"
	annEntry     = "entry"
	annPrivate   = "private"
	annBoundary  = "boundary"
	annWire      = "wire"
	annSecret    = "secret"
	annGuards    = "guards"
	annDetached  = "detached"
	annBlocking  = "blocking"
)

// annotation is one parsed seclint:<kind> doc-comment line.
type annotation struct {
	Kind string
	// Text is everything after the kind: a justification for
	// source/sanitizer/private/wire, a role for entry, a party for
	// boundary.
	Text string
}

// parseAnnotations extracts every seclint: line from a doc comment.
func parseAnnotations(doc *ast.CommentGroup) []annotation {
	if doc == nil {
		return nil
	}
	var out []annotation
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, "seclint:")
		if !ok {
			continue
		}
		kind, arg, _ := strings.Cut(rest, " ")
		if kind = strings.TrimSpace(kind); kind == "" {
			continue
		}
		out = append(out, annotation{Kind: kind, Text: strings.TrimSpace(arg)})
	}
	return out
}

// textOr substitutes a fallback for annotations written without a why.
func textOr(text, fallback string) string {
	if text == "" {
		return fallback
	}
	return text
}
