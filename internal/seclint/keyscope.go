package seclint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Keyscope confines private-key material to the party that generated
// it. Key-bearing types are declared with seclint:private (or come from
// the built-in stdlib table: rsa/ecdsa/ed25519 private keys) and the
// check is structural — a struct, slice, map, pointer or channel that
// can transitively hold a private key counts as key-bearing. Two rules:
//
//  1. Wire rule (all parties): no argument of a seclint:wire function —
//     the gob-encode points of the transport layer — may be key-bearing.
//     Private keys never cross a link, in either direction.
//  2. Mediator rule: no function reachable from a mediator entry point
//     may declare, receive or reference a key-bearing value. The
//     untrusted mediator holds public keys only.
var Keyscope = &Analyzer{
	Name:       "keyscope",
	Doc:        "private-key material stays with the party that generated it",
	RunProgram: runKeyscope,
}

func runKeyscope(pass *ProgramPass) {
	p := pass.Program
	for _, wc := range p.WireCalls {
		for _, arg := range wc.Call.Args {
			t := wc.Pkg.Info.TypeOf(arg)
			if t == nil || types.IsInterface(t) {
				continue // the payload parameter itself is `any`
			}
			if name, leaky := p.containsPrivate(t); leaky {
				pass.Reportf(wc.Pkg, arg.Pos(),
					"private-key material %s is encoded onto a transport link via %s: keys never leave the party that generated them",
					name, shortType(t))
			}
		}
	}
	for _, fn := range p.MediatorReachable() {
		// Closure bodies are covered by their declaring function's
		// walk (a reachable closure implies a reachable creator).
		if fn.Decl == nil || fn.Decl.Body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
			continue
		}
		reported := make(map[types.Object]bool)
		check := func(obj types.Object, pos token.Pos) {
			v, ok := obj.(*types.Var)
			if !ok || reported[obj] {
				return
			}
			if name, leaky := p.containsPrivate(v.Type()); leaky {
				reported[obj] = true
				pass.Reportf(fn.Pkg, pos,
					"mediator-reachable code holds private-key material %s (through %q): the untrusted mediator may hold public keys only [path %s]",
					name, v.Name(), p.Trace(fn))
			}
		}
		if sig, ok := fn.Obj.Type().(*types.Signature); ok {
			if recv := sig.Recv(); recv != nil {
				check(recv, fn.Pos)
			}
			for i := 0; i < sig.Params().Len(); i++ {
				check(sig.Params().At(i), fn.Pos)
			}
			for i := 0; i < sig.Results().Len(); i++ {
				check(sig.Results().At(i), fn.Pos)
			}
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := fn.Pkg.Info.Defs[id]; obj != nil {
				check(obj, id.Pos())
			}
			if obj := fn.Pkg.Info.Uses[id]; obj != nil {
				check(obj, id.Pos())
			}
			return true
		})
	}
}

// shortType renders a type with package-name (not path) qualifiers.
func shortType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
