package seclint

import (
	"go/ast"
	"go/types"
)

// Errdrop flags discarded error returns in non-test internal/ code:
// statement-level calls whose error result vanishes, and `_ =` blank
// assignments of error results (including crypto constructors and
// rand.Read-style calls). A swallowed error in a protocol hot path can
// silently degrade a security property — e.g. an unchecked Send of an
// abort message leaves the peer computing on a dead session, and an
// unchecked Close can mask lost frames on a real transport.
//
// Deliberately exempt (documented in docs/STATIC_ANALYSIS.md):
//   - defer'd and go'd calls (teardown-path convention);
//   - Write* methods on in-memory sinks (hash.Hash, bytes.Buffer,
//     strings.Builder and writer-shaped interfaces), which are
//     documented never to fail.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error results in non-test internal/ code",
	Run:  runErrdrop,
}

func runErrdrop(p *Pass) {
	if !p.InDir("internal") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				errIdx, _ := p.callResultErrors(call)
				if len(errIdx) == 0 || exemptWriter(p, call) {
					return true
				}
				p.Reportf(call.Pos(), "error result of %s dropped; handle it or blank-assign with an allowlisted justification", callLabel(call))
			case *ast.AssignStmt:
				checkBlankErrAssign(p, stmt)
			}
			return true
		})
	}
}

// checkBlankErrAssign flags `_ = errCall()` and `v, _ := f()` patterns
// where the blanked position carries the error result.
func checkBlankErrAssign(p *Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) == 1 {
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		errIdx, n := p.callResultErrors(call)
		if len(errIdx) == 0 || len(stmt.Lhs) != n || exemptWriter(p, call) {
			return
		}
		for _, i := range errIdx {
			if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				p.Reportf(stmt.Pos(), "error result of %s discarded with _; handle it or allowlist with a justification", callLabel(call))
				return
			}
		}
		return
	}
	// Parallel assignment: x, _ = f(), g() — check each 1:1 pair.
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return
	}
	for i, rhs := range stmt.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		errIdx, n := p.callResultErrors(call)
		if len(errIdx) == 0 || n != 1 || exemptWriter(p, call) {
			continue
		}
		if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(rhs.Pos(), "error result of %s discarded with _; handle it or allowlist with a justification", callLabel(call))
		}
	}
}

// exemptWriter reports whether call is a Write-style method on an
// in-memory sink that is documented never to fail: hash.Hash (and any
// writer-shaped interface, e.g. the anonymous digest interfaces),
// bytes.Buffer and strings.Builder.
func exemptWriter(p *Pass, call *ast.CallExpr) bool {
	// fmt.Fprint* into an in-memory sink: the sink's Write never fails,
	// so neither does the Fprint.
	for _, fn := range [...]string{"Fprintf", "Fprint", "Fprintln"} {
		if p.pkgFunc(call, "fmt", fn) && len(call.Args) > 0 {
			return isMemorySink(p.TypeOf(call.Args[0]))
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return true
	}
	return isMemorySink(t)
}

// isMemorySink reports whether t is a bytes or strings package type
// (Buffer, Builder, Reader): their Write methods are documented never
// to return an error.
func isMemorySink(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "bytes", "strings":
		return true
	}
	return false
}
