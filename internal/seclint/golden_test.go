package seclint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files instead of comparing against
// them: go test ./internal/seclint/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden/")

// goldenCases maps every analyzer to the fixture whose rendered
// findings are pinned. Where the want-comment tests check that findings
// appear at the expected positions matching regexps, the goldens pin
// the exact rendered message text: a wording change — even one the
// regexps still match — must show up in review as a golden diff,
// because downstream tooling (the allowlist audit flow, SARIF
// consumers, grep-driven triage) keys on these strings.
var goldenCases = []struct {
	name    string
	fixture string
	relDir  string // re-homes scoped analyzers, as in the fixture tests
	program bool
	run     []*Analyzer
}{
	{name: "weakrand", fixture: "testdata/src/weakrand", run: []*Analyzer{Weakrand}},
	{name: "weakrand_protocol", fixture: "testdata/src/weakrand_protocol", relDir: "internal/mediation", run: []*Analyzer{Weakrand}},
	{name: "subtlecmp", fixture: "testdata/src/subtlecmp", run: []*Analyzer{Subtlecmp}},
	{name: "secretfmt", fixture: "testdata/src/secretfmt", run: []*Analyzer{Secretfmt}},
	{name: "errdrop", fixture: "testdata/src/errdrop", run: []*Analyzer{Errdrop}},
	{name: "rawexp", fixture: "testdata/src/rawexp", relDir: "internal/crypto/fixture", run: []*Analyzer{Rawexp}},
	{name: "rawrecv", fixture: "testdata/src/rawrecv", relDir: "internal/mediation", run: []*Analyzer{Rawrecv}},
	{name: "plaintaint", fixture: "testdata/src/plaintaint", program: true, run: []*Analyzer{Plaintaint}},
	{name: "keyscope", fixture: "testdata/src/keyscope", program: true, run: []*Analyzer{Keyscope}},
	{name: "cttaint", fixture: "testdata/src/cttaint", program: true, run: []*Analyzer{Cttaint}},
	{name: "conccheck", fixture: "testdata/src/conccheck", program: true, run: []*Analyzer{Conccheck}},
	{name: "conccheck_perimeter", fixture: "testdata/src/conccheck_perimeter", relDir: "internal/session", program: true, run: []*Analyzer{Conccheck}},
}

// TestGoldenMessages pins every analyzer's full rendered output on its
// fixture, one golden file per analyzer.
func TestGoldenMessages(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			loader, pkg := loadFixture(t, tc.fixture)
			if tc.relDir != "" {
				pkg.RelDir = tc.relDir
			}
			runner := &Runner{Loader: loader, Analyzers: tc.run}
			var findings []Finding
			if tc.program {
				findings = runner.RunProgram()
			} else {
				findings = runner.RunPackage(pkg)
			}
			SortFindings(findings)
			var b strings.Builder
			for _, f := range findings {
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendered findings diverge from %s (re-run with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
