// Package testutil holds shared test helpers. Its centerpiece is the
// goroutine leak checker the resilience suite hangs every protocol-abort
// assertion on: a protocol that fails cleanly must also unwind cleanly.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// ignoredStacks marks goroutines that are part of the runtime or the
// testing framework rather than code under test.
var ignoredStacks = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.tRunner",
	"runtime.goexit",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"sigterm.handler",
	"runtime_mcall",
	"(*loggingT).flushDaemon",
	"goroutine in C code",
	// The telemetry HTTP exporter keeps one accept loop per Serve call
	// for the life of the process; it is opted into explicitly, not
	// leaked by a protocol run.
	"net/http.(*Server).Serve",
}

// interestingGoroutines returns the stacks of goroutines that are
// neither the caller's nor framework noise.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
next:
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || strings.Contains(g, "interestingGoroutines") {
			continue
		}
		for _, ignored := range ignoredStacks {
			if strings.Contains(g, ignored) {
				continue next
			}
		}
		out = append(out, strings.TrimSpace(g))
	}
	return out
}

// failer is the subset of testing.TB the checker needs (an interface so
// the package itself stays test-framework-agnostic and self-testable).
type failer interface {
	Helper()
	Errorf(format string, args ...any)
}

// Snapshotted is a baseline of live goroutines taken with Snapshot;
// CheckGoroutines reports any goroutine born after it that refuses to
// die.
type Snapshotted struct {
	before map[string]bool
}

// Snapshot records the currently live goroutines (by stack) so only
// goroutines created afterwards count as leaks.
func Snapshot() Snapshotted {
	s := Snapshotted{before: map[string]bool{}}
	for _, g := range interestingGoroutines() {
		s.before[firstLine(g)] = true
	}
	return s
}

func firstLine(g string) string {
	if i := strings.IndexByte(g, '\n'); i >= 0 {
		return g[:i]
	}
	return g
}

// CheckGoroutines polls until every goroutine beyond those alive at
// Snapshot time has drained, failing t with the surviving stacks on
// timeout. Goroutines get a grace period to unwind (deferred closes,
// worker-pool teardown) before they are reported. Call it via defer so
// it runs after the code under test has fully returned:
//
//	defer testutil.CheckGoroutines(t, testutil.Snapshot())
func CheckGoroutines(t failer, snap Snapshotted) {
	t.Helper()
	deadline := time.Now().Add(4 * time.Second)
	var leaked []string
	for {
		leaked = leaked[:0]
		for _, g := range interestingGoroutines() {
			if !snap.before[firstLine(g)] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("%d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}

// WithinDeadline runs f in a goroutine and fails if it has not returned
// within d — the "typed error, not a hang" assertion of the resilience
// suite. It returns f's error when f finishes in time.
func WithinDeadline(t interface {
	Helper()
	Fatalf(format string, args ...any)
}, d time.Duration, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("still blocked after %v (want completion within the deadline)\n%s", d, buf)
		return fmt.Errorf("unreachable")
	}
}
