package testutil

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// recorder implements failer, capturing Errorf calls instead of failing.
type recorder struct {
	failures []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}

func TestCheckGoroutinesClean(t *testing.T) {
	snap := Snapshot()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	rec := &recorder{}
	CheckGoroutines(rec, snap)
	if len(rec.failures) != 0 {
		t.Errorf("clean run reported leaks: %v", rec.failures)
	}
}

func TestCheckGoroutinesDetectsLeak(t *testing.T) {
	snap := Snapshot()
	block := make(chan struct{})
	go func() { <-block }()
	rec := &recorder{}
	start := time.Now()
	CheckGoroutines(rec, snap)
	close(block) // release the leaked goroutine before the next test
	if len(rec.failures) == 0 {
		t.Fatal("blocked goroutine not reported as a leak")
	}
	if !strings.Contains(rec.failures[0], "leaked") {
		t.Errorf("unexpected failure message: %q", rec.failures[0])
	}
	if time.Since(start) < 3*time.Second {
		t.Error("checker gave up before the grace period elapsed")
	}
}

func TestCheckGoroutinesWaitsForSlowUnwind(t *testing.T) {
	snap := Snapshot()
	go time.Sleep(300 * time.Millisecond) // unwinds well inside the grace period
	rec := &recorder{}
	CheckGoroutines(rec, snap)
	if len(rec.failures) != 0 {
		t.Errorf("slow-but-finite goroutine reported as leak: %v", rec.failures)
	}
}

func TestWithinDeadlineReturnsError(t *testing.T) {
	want := errors.New("typed failure")
	got := WithinDeadline(t, time.Second, func() error { return want })
	if got != want {
		t.Errorf("WithinDeadline = %v, want the function's error", got)
	}
}

// fatalRecorder satisfies WithinDeadline's t parameter while capturing the
// Fatalf that fires when the function overruns.
type fatalRecorder struct {
	fatals []string
}

func (r *fatalRecorder) Helper() {}
func (r *fatalRecorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, format)
}

func TestWithinDeadlineFlagsHang(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	rec := &fatalRecorder{}
	WithinDeadline(rec, 50*time.Millisecond, func() error {
		<-block
		return nil
	})
	if len(rec.fatals) == 0 {
		t.Fatal("hung function not reported")
	}
	if !strings.Contains(rec.fatals[0], "still blocked") {
		t.Errorf("unexpected fatal message: %q", rec.fatals[0])
	}
}
