package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			err := ForEach(n, workers, func(i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(500, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestFirstErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(200, workers, func(i int) (int, error) {
			if i == 137 {
				return 0, boom
			}
			return i, nil
		})
		if err != boom {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, boom)
		}
	}
}

func TestErrorStopsDistribution(t *testing.T) {
	// After an early error, later chunks must not start: with chunking we
	// can only assert that far fewer than n items ran when the very first
	// item fails (in-flight chunk items may still finish).
	var ran atomic.Int32
	err := ForEach(10000, 4, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("fail at %d", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() > 10000/2 {
		t.Errorf("error did not stop distribution: %d of 10000 items ran", ran.Load())
	}
}

func TestSequentialRunsInline(t *testing.T) {
	// workers=1 must execute on the calling goroutine in index order.
	var last = -1
	err := ForEach(100, 1, func(i int) error {
		if i != last+1 {
			t.Fatalf("out-of-order sequential execution: %d after %d", i, last)
		}
		last = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 99 {
		t.Fatalf("sequential run stopped at %d", last)
	}
}
