// Package parallel provides the bounded data-parallel execution layer
// under the protocol hot loops: every delivery-phase protocol spends its
// runtime in per-value public-key operations (Pohlig–Hellman
// exponentiations, Paillier encryptions, hybrid seals), which are
// independent across values and therefore embarrassingly parallel.
//
// The helpers chunk an index range [0, n) over a fixed number of worker
// goroutines, propagate the first error (cancelling the remaining
// chunks), and — crucially for protocol transcripts — preserve output
// order: Map writes result i to slot i, so a parallel run produces the
// byte-identical message sequence a sequential run would, regardless of
// worker count or scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// Process-wide pool telemetry: task and batch counts plus the
// distribution of how long a chunk waited from batch start to pickup —
// the pool's queueing delay. One histogram observation per chunk (not
// per item) keeps the overhead off the per-value hot path.
var (
	opTasks   = telemetry.CryptoOp("parallel.tasks")
	opBatches = telemetry.CryptoOp("parallel.batches")
	queueWait = telemetry.GlobalHistogram("parallel_queue_wait_ns")
)

// chunksPerWorker over-partitions the index range so workers that draw
// cheap items steal remaining chunks from workers that drew expensive
// ones (tuple-set sizes vary per join value).
const chunksPerWorker = 4

// Resolve maps a Params-style worker knob to an effective worker count:
// 0 selects runtime.NumCPU(), anything below 1 degrades to sequential
// execution, and positive values are used as-is.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.NumCPU()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0, n), distributing indices over
// at most Resolve(workers) goroutines. fn must be safe for concurrent
// invocation on distinct indices when workers != 1. The first error stops
// the distribution of further chunks (in-flight items finish) and is
// returned; with workers resolving to 1 the loop runs inline on the
// calling goroutine, preserving today's sequential behavior exactly.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	opTasks.Add(int64(n))
	opBatches.Add(1)
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	batchStart := time.Now()
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				queueWait.Observe(time.Since(batchStart).Nanoseconds())
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map computes out[i] = fn(i) for every i in [0, n) with ForEach's
// scheduling and error semantics. The output slice is index-addressed, so
// element order is deterministic and independent of the worker count.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
