package sqlparse

import "testing"

// FuzzParse drives the lexer+parser with arbitrary input: Parse must never
// panic, and any accepted query must render to SQL that re-parses to the
// same rendering (idempotent normalization).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM R",
		"SELECT a, b FROM R JOIN S ON R.a = S.b WHERE x > 1 AND NOT y = 'z''q'",
		"select * from R natural join S",
		"SELECT SUM(x) FROM R WHERE ok = TRUE",
		"SELECT COUNT(*) FROM R",
		"SELECT * FROM R WHERE f = 1.5 OR f = -2",
		"SELECT * FROM R WHERE (a = 1 AND b = 2) OR c <> 3;",
		"'unterminated",
		"SELECT",
		"",
		"🙂 SELECT * FROM R",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", input, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("rendering not idempotent: %q -> %q", rendered, q2.String())
		}
	})
}
