// Package sqlparse is the "SQL2Algebra" front end of the mediation system:
// a tokenizer and recursive-descent parser for the select-project-join SQL
// fragment the mediator accepts, producing relational algebra trees
// (internal/algebra) with partial queries at the leaves.
//
// Supported grammar (case-insensitive keywords):
//
//	query      := SELECT selectList FROM tableRef [WHERE expr]
//	selectList := '*' | column (',' column)*
//	tableRef   := ident
//	           | ident NATURAL JOIN ident
//	           | ident JOIN ident ON joinCond (AND joinCond)*
//	joinCond   := column '=' column
//	expr       := orExpr with AND/OR/NOT, parentheses, comparisons over
//	              columns and literals (integers, floats, 'strings',
//	              TRUE/FALSE)
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators: , ( ) * = <> != < <= > >= .
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents preserved
	pos  int    // byte offset in the input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"NATURAL": true, "AND": true, "OR": true, "NOT": true, "TRUE": true,
	"FALSE": true, "AS": true, "DISTINCT": true, "UNION": true, "ALL": true,
}

// lex tokenizes the input. Errors carry the byte position.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'': // string literal with '' escaping
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			// multi-char operators first
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "!=", "<=", ">=":
				toks = append(toks, token{kind: tokSymbol, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case ',', '(', ')', '*', '=', '<', '>', '.', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c)
}
