package sqlparse

import (
	"strings"
	"testing"

	"github.com/secmediation/secmediation/internal/algebra"
	rel "github.com/secmediation/secmediation/internal/relation"
)

func testCatalog(t testing.TB) algebra.MapCatalog {
	t.Helper()
	rs := rel.MustSchema("R",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "name", Kind: rel.KindString})
	ss := rel.MustSchema("S",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "city", Kind: rel.KindString})
	return algebra.MapCatalog{
		"R": rel.MustFromTuples(rs,
			rel.Tuple{rel.Int(1), rel.String_("a")},
			rel.Tuple{rel.Int(2), rel.String_("b")},
			rel.Tuple{rel.Int(3), rel.String_("c")}),
		"S": rel.MustFromTuples(ss,
			rel.Tuple{rel.Int(2), rel.String_("x")},
			rel.Tuple{rel.Int(3), rel.String_("y")},
			rel.Tuple{rel.Int(4), rel.String_("z")}),
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("select * from R")
	if err != nil {
		t.Fatal(err)
	}
	if q.Columns != nil || q.Left != "R" || q.Right != "" || q.Where != nil {
		t.Errorf("Parse: %+v", q)
	}
}

func TestParseJoinOn(t *testing.T) {
	q, err := Parse("SELECT name, city FROM R JOIN S ON R.id = S.id")
	if err != nil {
		t.Fatal(err)
	}
	if q.Left != "R" || q.Right != "S" || q.Natural {
		t.Errorf("join parse: %+v", q)
	}
	if len(q.JoinLeft) != 1 || q.JoinLeft[0] != "R.id" || q.JoinRight[0] != "S.id" {
		t.Errorf("join cols: %v = %v", q.JoinLeft, q.JoinRight)
	}
	if len(q.Columns) != 2 {
		t.Errorf("select list: %v", q.Columns)
	}
}

func TestParseJoinColumnNormalization(t *testing.T) {
	// Reversed qualification must be normalized so JoinLeft belongs to R.
	q, err := Parse("SELECT * FROM R JOIN S ON S.id = R.id")
	if err != nil {
		t.Fatal(err)
	}
	if q.JoinLeft[0] != "R.id" || q.JoinRight[0] != "S.id" {
		t.Errorf("normalization failed: %v = %v", q.JoinLeft, q.JoinRight)
	}
}

func TestParseNaturalJoin(t *testing.T) {
	q, err := Parse("select * from R natural join S")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Natural || q.Right != "S" {
		t.Errorf("natural join parse: %+v", q)
	}
}

func TestParseWhere(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE (id >= 2 AND NOT name = 'x''y') OR id <> 7")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("nil WHERE")
	}
	s := q.Where.String()
	for _, want := range []string{">= 2", "NOT", "'x''y'", "<> 7", "OR"} {
		if !strings.Contains(s, want) {
			t.Errorf("WHERE %q missing %q", s, want)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE id = -5 OR score = 1.25 OR ok = TRUE OR ok = false")
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.String()
	for _, want := range []string{"-5", "1.25", "true", "false"} {
		if !strings.Contains(s, want) {
			t.Errorf("literals %q missing %q", s, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select from R",
		"select * R",
		"select * from R join S",        // missing ON
		"select * from R join S on id",  // missing '='
		"select * from R where",         // missing expr
		"select * from R where (id = 1", // unbalanced paren
		"select * from R where id = 'x", // unterminated string
		"select * from R; garbage",      // trailing input
		"select a. from R",              // dangling qualifier
		"select * from R where id @ 3",  // bad char
		"select * from R natural S",     // NATURAL without JOIN
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestTreeEvaluation(t *testing.T) {
	cat := testCatalog(t)
	tree, err := ParseToTree("SELECT name, city FROM R JOIN S ON R.id = S.id WHERE city <> 'z'")
	if err != nil {
		t.Fatal(err)
	}
	out, err := tree.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("eval len = %d, want 2\n%v", out.Len(), out)
	}
	if out.Schema().Arity() != 2 {
		t.Errorf("eval arity = %d, want 2", out.Schema().Arity())
	}
}

func TestTreeSingleRelation(t *testing.T) {
	cat := testCatalog(t)
	tree, err := ParseToTree("SELECT name FROM R WHERE id > 1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := tree.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("eval len = %d, want 2", out.Len())
	}
}

func TestNaturalJoinTreeEvaluation(t *testing.T) {
	cat := testCatalog(t)
	tree, err := ParseToTree("SELECT * FROM R NATURAL JOIN S")
	if err != nil {
		t.Fatal(err)
	}
	out, err := tree.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 { // ids 2 and 3 overlap
		t.Errorf("natural join len = %d, want 2", out.Len())
	}
}

func TestQueryStringRoundtrip(t *testing.T) {
	inputs := []string{
		"SELECT * FROM R",
		"SELECT name, city FROM R JOIN S ON R.id = S.id",
		"SELECT * FROM R NATURAL JOIN S",
		"SELECT * FROM R WHERE id = 1",
	}
	for _, in := range inputs {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("String roundtrip: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestParseMultiAttributeJoin(t *testing.T) {
	q, err := Parse("SELECT * FROM R JOIN S ON R.id = S.id AND R.name = S.city")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.JoinLeft) != 2 || q.JoinLeft[1] != "R.name" || q.JoinRight[1] != "S.city" {
		t.Errorf("multi-attr join cols: %v = %v", q.JoinLeft, q.JoinRight)
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lex("'a''b' 12 x_y <= <>")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "a'b" {
		t.Errorf("string token: %+v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[2].kind != tokIdent {
		t.Errorf("token kinds: %+v %+v", toks[1], toks[2])
	}
	if toks[3].text != "<=" || toks[4].text != "<>" {
		t.Errorf("operators: %+v %+v", toks[3], toks[4])
	}
}

func TestParseAggregate(t *testing.T) {
	q, err := Parse("SELECT SUM(amount) FROM Claims WHERE amount > 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregate == nil || q.Aggregate.Func != "SUM" || q.Aggregate.Column != "amount" {
		t.Fatalf("aggregate: %+v", q.Aggregate)
	}
	if q.Where == nil || q.Columns != nil {
		t.Errorf("query: %+v", q)
	}
	// COUNT(*) is allowed, SUM(*) is not.
	q2, err := Parse("SELECT count(*) FROM R")
	if err != nil || q2.Aggregate.Func != "COUNT" || q2.Aggregate.Column != "*" {
		t.Errorf("COUNT(*): %+v, %v", q2.Aggregate, err)
	}
	if _, err := Parse("SELECT SUM(*) FROM R"); err == nil {
		t.Error("SUM(*) accepted")
	}
	if _, err := Parse("SELECT AVG( FROM R"); err == nil {
		t.Error("unclosed aggregate accepted")
	}
	// A column that merely looks like a function name still parses.
	q3, err := Parse("SELECT sum FROM R")
	if err != nil || q3.Aggregate != nil || q3.Columns[0] != "sum" {
		t.Errorf("bare 'sum' column: %+v, %v", q3, err)
	}
	// String rendering round-trips.
	if got := q.String(); got != "SELECT SUM(amount) FROM Claims WHERE amount > 10" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseDistinct(t *testing.T) {
	q, err := Parse("SELECT DISTINCT name FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || len(q.Columns) != 1 {
		t.Errorf("distinct parse: %+v", q)
	}
	if got := q.String(); got != "SELECT DISTINCT name FROM R" {
		t.Errorf("String() = %q", got)
	}
	q2, err := Parse("SELECT DISTINCT * FROM R NATURAL JOIN S")
	if err != nil || !q2.Distinct || q2.Columns != nil {
		t.Errorf("distinct star: %+v, %v", q2, err)
	}
}

func TestParseUnion(t *testing.T) {
	q, err := Parse("SELECT * FROM A UNION SELECT * FROM B")
	if err != nil {
		t.Fatal(err)
	}
	if q.UnionWith != "B" || q.UnionAll {
		t.Errorf("union parse: %+v", q)
	}
	q2, err := Parse("SELECT * FROM A UNION ALL SELECT * FROM B")
	if err != nil || !q2.UnionAll {
		t.Errorf("union all parse: %+v, %v", q2, err)
	}
	if q2.String() != "SELECT * FROM A UNION ALL SELECT * FROM B" {
		t.Errorf("union rendering: %q", q2.String())
	}
	bad := []string{
		"SELECT a FROM A UNION SELECT * FROM B",                     // projection operand
		"SELECT * FROM A WHERE a = 1 UNION SELECT * FROM B",         // filtered operand
		"SELECT * FROM A UNION SELECT a FROM B",                     // non-star right side
		"SELECT * FROM A UNION",                                     // missing operand
		"SELECT * FROM A JOIN B ON A.x = B.x UNION SELECT * FROM C", // join operand
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}
