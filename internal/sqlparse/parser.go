package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/relation"
)

// Query is a parsed SQL query in structured form, before conversion to an
// algebra tree. The mediator inspects it to decompose the global query.
type Query struct {
	// Distinct marks SELECT DISTINCT queries.
	Distinct bool
	// Columns is the select list; nil means '*'.
	Columns []string
	// Aggregate is set for aggregate queries ("SELECT SUM(col) FROM R");
	// Columns is nil in that case.
	Aggregate *AggregateSpec
	// Left and Right are the relation names in the FROM clause. Right is
	// empty for single-relation queries.
	Left, Right string
	// Natural marks a NATURAL JOIN.
	Natural bool
	// JoinLeft/JoinRight are the ON join columns (parallel lists).
	JoinLeft, JoinRight []string
	// Where is the optional WHERE predicate.
	Where algebra.Expr
	// MoreJoins holds the joins beyond the first ("A JOIN B ... JOIN C
	// ..."), in order. The two-party delivery protocols handle a single
	// join; chains are executed as successive joins (paper §8) by
	// mediation.Network.Query.
	MoreJoins []JoinStep
	// UnionWith names the second relation of a set-union query
	// ("SELECT * FROM A UNION [ALL] SELECT * FROM B").
	UnionWith string
	// UnionAll keeps duplicates (UNION ALL).
	UnionAll bool
}

// JoinStep is one additional join of a chained FROM clause.
type JoinStep struct {
	// Relation is the newly joined relation.
	Relation string
	// Natural marks a NATURAL JOIN step.
	Natural bool
	// OnLeft/OnRight are the raw ON column pairs (unresolved: which side
	// belongs to the accumulated intermediate is decided at execution).
	OnLeft, OnRight []string
}

// AggregateSpec describes a single aggregate select ("SUM(amount)").
type AggregateSpec struct {
	// Func is one of "SUM", "COUNT", "AVG".
	Func string
	// Column is the aggregated column; "*" only for COUNT.
	Column string
}

// parser is a standard recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

// Parse parses an SQL string into a Query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// allow a trailing semicolon
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return q, nil
}

// ParseToTree parses an SQL string and converts it to an algebra tree.
func ParseToTree(input string) (algebra.Node, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return q.Tree(), nil
}

// Tree converts the parsed query into an algebra tree: scans at the leaves,
// an optional join, then selection, then projection — the shape the
// mediator's decomposition (Listing 1) expects.
func (q *Query) Tree() algebra.Node {
	var n algebra.Node = algebra.Scan{Relation: q.Left}
	if q.Right != "" {
		n = algebra.JoinNode{
			Left:      algebra.Scan{Relation: q.Left},
			Right:     algebra.Scan{Relation: q.Right},
			LeftCols:  q.JoinLeft,
			RightCols: q.JoinRight,
			Natural:   q.Natural,
		}
	}
	if q.Where != nil {
		n = algebra.SelectNode{Pred: q.Where, Child: n}
	}
	if q.Columns != nil {
		n = algebra.ProjectNode{Cols: q.Columns, Child: n}
	}
	return n
}

// String renders the query back to SQL (normalized).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	switch {
	case q.Aggregate != nil:
		b.WriteString(q.Aggregate.Func)
		b.WriteByte('(')
		b.WriteString(q.Aggregate.Column)
		b.WriteByte(')')
	case q.Columns == nil:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(q.Columns, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(q.Left)
	if q.Right != "" {
		if q.Natural {
			b.WriteString(" NATURAL JOIN ")
			b.WriteString(q.Right)
		} else {
			b.WriteString(" JOIN ")
			b.WriteString(q.Right)
			b.WriteString(" ON ")
			for i := range q.JoinLeft {
				if i > 0 {
					b.WriteString(" AND ")
				}
				b.WriteString(q.JoinLeft[i])
				b.WriteString(" = ")
				b.WriteString(q.JoinRight[i])
			}
		}
	}
	for _, step := range q.MoreJoins {
		if step.Natural {
			b.WriteString(" NATURAL JOIN ")
			b.WriteString(step.Relation)
			continue
		}
		b.WriteString(" JOIN ")
		b.WriteString(step.Relation)
		b.WriteString(" ON ")
		for i := range step.OnLeft {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(step.OnLeft[i])
			b.WriteString(" = ")
			b.WriteString(step.OnRight[i])
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if q.UnionWith != "" {
		b.WriteString(" UNION ")
		if q.UnionAll {
			b.WriteString("ALL ")
		}
		b.WriteString("SELECT * FROM ")
		b.WriteString(q.UnionWith)
	}
	return b.String()
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlparse: offset %d: expected %s, got %q", t.pos, kw, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sqlparse: offset %d: expected %q, got %q", t.pos, sym, t.text)
	}
	return nil
}

// columnName parses an optionally qualified column name: ident [ '.' ident ].
func (p *parser) columnName() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlparse: offset %d: expected column name, got %q", t.pos, t.text)
	}
	name := t.text
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		t2 := p.next()
		if t2.kind != tokIdent {
			return "", fmt.Errorf("sqlparse: offset %d: expected column after '.', got %q", t2.pos, t2.text)
		}
		name = name + "." + t2.text
	}
	return name, nil
}

// tryAggregate recognizes "FUNC ( column )" or "COUNT ( * )" at the start
// of a select list.
func (p *parser) tryAggregate() (*AggregateSpec, bool, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, false, nil
	}
	fn := strings.ToUpper(t.text)
	if fn != "SUM" && fn != "COUNT" && fn != "AVG" {
		return nil, false, nil
	}
	if p.i+1 >= len(p.toks) || p.toks[p.i+1].kind != tokSymbol || p.toks[p.i+1].text != "(" {
		return nil, false, nil
	}
	p.next() // func name
	p.next() // '('
	spec := &AggregateSpec{Func: fn}
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		if fn != "COUNT" {
			return nil, false, fmt.Errorf("sqlparse: offset %d: %s(*) is not supported", p.peek().pos, fn)
		}
		p.next()
		spec.Column = "*"
	} else {
		c, err := p.columnName()
		if err != nil {
			return nil, false, err
		}
		spec.Column = c
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, false, err
	}
	return spec, true, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.peek().kind == tokKeyword && p.peek().text == "DISTINCT" {
		p.next()
		q.Distinct = true
	}
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
	} else if agg, ok, err := p.tryAggregate(); err != nil {
		return nil, err
	} else if ok {
		q.Aggregate = agg
	} else {
		for {
			c, err := p.columnName()
			if err != nil {
				return nil, err
			}
			q.Columns = append(q.Columns, c)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparse: offset %d: expected relation name, got %q", t.pos, t.text)
	}
	q.Left = t.text

	first := true
	for {
		var step JoinStep
		switch {
		case p.peek().kind == tokKeyword && p.peek().text == "NATURAL":
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			rt := p.next()
			if rt.kind != tokIdent {
				return nil, fmt.Errorf("sqlparse: offset %d: expected relation name, got %q", rt.pos, rt.text)
			}
			step = JoinStep{Relation: rt.text, Natural: true}
		case p.peek().kind == tokKeyword && p.peek().text == "JOIN":
			p.next()
			rt := p.next()
			if rt.kind != tokIdent {
				return nil, fmt.Errorf("sqlparse: offset %d: expected relation name, got %q", rt.pos, rt.text)
			}
			step = JoinStep{Relation: rt.text}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			for {
				l, err := p.columnName()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol("="); err != nil {
					return nil, err
				}
				r, err := p.columnName()
				if err != nil {
					return nil, err
				}
				step.OnLeft = append(step.OnLeft, l)
				step.OnRight = append(step.OnRight, r)
				if p.peek().kind == tokKeyword && p.peek().text == "AND" {
					p.next()
					continue
				}
				break
			}
		default:
			if first {
				// single-relation query
			}
			goto joinsDone
		}
		if first {
			q.Right = step.Relation
			q.Natural = step.Natural
			for i := range step.OnLeft {
				l, r := step.OnLeft[i], step.OnRight[i]
				// Normalize: the column qualified by (or belonging to) the
				// left relation goes into JoinLeft.
				if rel, _, ok := qualifier(l); ok && rel == q.Right {
					l, r = r, l
				} else if rel, _, ok := qualifier(r); ok && rel == q.Left {
					l, r = r, l
				}
				q.JoinLeft = append(q.JoinLeft, l)
				q.JoinRight = append(q.JoinRight, r)
			}
			first = false
		} else {
			q.MoreJoins = append(q.MoreJoins, step)
		}
	}
joinsDone:

	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.peek().kind == tokKeyword && p.peek().text == "UNION" {
		p.next()
		if p.peek().kind == tokKeyword && p.peek().text == "ALL" {
			p.next()
			q.UnionAll = true
		}
		if q.Right != "" || q.Columns != nil || q.Aggregate != nil || q.Where != nil {
			return nil, fmt.Errorf("sqlparse: UNION supports only \"SELECT * FROM R\" operands")
		}
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		rt := p.next()
		if rt.kind != tokIdent {
			return nil, fmt.Errorf("sqlparse: offset %d: expected relation name, got %q", rt.pos, rt.text)
		}
		q.UnionWith = rt.text
	}
	return q, nil
}

func qualifier(name string) (rel, col string, ok bool) {
	i := strings.IndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (algebra.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "OR" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = algebra.Or{Left: l, Right: r}
	}
	return l, nil
}

// parseAnd := parseNot (AND parseNot)*
func (p *parser) parseAnd() (algebra.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "AND" {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = algebra.And{Left: l, Right: r}
	}
	return l, nil
}

// parseNot := NOT parseNot | parseComparison
func (p *parser) parseNot() (algebra.Expr, error) {
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return algebra.Not{Inner: inner}, nil
	}
	return p.parseComparison()
}

// parseComparison := '(' parseOr ')' | primary [op primary]
func (p *parser) parseComparison() (algebra.Expr, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol {
		var op algebra.CompareOp
		matched := true
		switch p.peek().text {
		case "=":
			op = algebra.OpEq
		case "<>", "!=":
			op = algebra.OpNe
		case "<":
			op = algebra.OpLt
		case "<=":
			op = algebra.OpLe
		case ">":
			op = algebra.OpGt
		case ">=":
			op = algebra.OpGe
		default:
			matched = false
		}
		if matched {
			p.next()
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return algebra.Compare{Op: op, Left: l, Right: r}, nil
		}
	}
	return l, nil
}

// parsePrimary := column | number | string | TRUE | FALSE
func (p *parser) parsePrimary() (algebra.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		name, err := p.columnName()
		if err != nil {
			return nil, err
		}
		return algebra.ColumnRef{Name: name}, nil
	case tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: offset %d: bad float %q", t.pos, t.text)
			}
			return algebra.Literal{Value: relation.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: offset %d: bad integer %q", t.pos, t.text)
		}
		return algebra.Literal{Value: relation.Int(i)}, nil
	case tokString:
		p.next()
		return algebra.Literal{Value: relation.String_(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.next()
			return algebra.Literal{Value: relation.Bool(true)}, nil
		case "FALSE":
			p.next()
			return algebra.Literal{Value: relation.Bool(false)}, nil
		}
	}
	return nil, fmt.Errorf("sqlparse: offset %d: expected value or column, got %q", t.pos, t.text)
}
