package pm

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	rel "github.com/secmediation/secmediation/internal/relation"
)

var (
	keyOnce sync.Once
	tk      *paillier.PrivateKey
)

func testKey(t testing.TB) *paillier.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		tk, err = paillier.GenerateKey(rand.Reader, 512)
		if err != nil {
			panic(err)
		}
	})
	return tk
}

func TestRootOfValueDeterministicAndDistinct(t *testing.T) {
	a := RootOfValue(rel.Int(7))
	b := RootOfValue(rel.Int(7))
	c := RootOfValue(rel.Int(8))
	d := RootOfValue(rel.String_("7"))
	if a.Cmp(b) != 0 {
		t.Error("root not deterministic")
	}
	if a.Cmp(c) == 0 || a.Cmp(d) == 0 {
		t.Error("distinct values share a root")
	}
	if a.BitLen() > 8*RootBytes {
		t.Error("root exceeds RootBytes")
	}
}

func TestFromRootsHasExactRoots(t *testing.T) {
	k := testKey(t)
	roots := []*big.Int{RootOfValue(rel.Int(1)), RootOfValue(rel.Int(2)), RootOfValue(rel.Int(3))}
	p, err := FromRoots(roots, k.N)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 3 {
		t.Errorf("degree = %d, want 3", p.Degree())
	}
	for _, r := range roots {
		if p.Eval(r).Sign() != 0 {
			t.Errorf("P(root) != 0")
		}
	}
	if p.Eval(RootOfValue(rel.Int(99))).Sign() == 0 {
		t.Error("P(non-root) == 0")
	}
	if _, err := FromRoots(nil, k.N); err == nil {
		t.Error("empty root list accepted")
	}
}

// Property: FromRoots is a correct expansion — P(x) = Π(a_i − x) for
// random evaluation points.
func TestFromRootsMatchesProductForm(t *testing.T) {
	k := testKey(t)
	f := func(rootSeeds []uint16, xSeed uint32) bool {
		if len(rootSeeds) == 0 || len(rootSeeds) > 12 {
			return true
		}
		roots := make([]*big.Int, len(rootSeeds))
		for i, s := range rootSeeds {
			roots[i] = big.NewInt(int64(s))
		}
		p, err := FromRoots(roots, k.N)
		if err != nil {
			return false
		}
		x := big.NewInt(int64(xSeed))
		want := big.NewInt(1)
		for _, a := range roots {
			f := new(big.Int).Sub(a, x)
			want.Mul(want, f)
			want.Mod(want, k.N)
		}
		return p.Eval(x).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncryptedEvaluationMatchesPlain(t *testing.T) {
	k := testKey(t)
	roots := []*big.Int{big.NewInt(11), big.NewInt(22), big.NewInt(33)}
	p, _ := FromRoots(roots, k.N)
	ep, err := p.Encrypt(&k.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []*big.Int{big.NewInt(11), big.NewInt(5), big.NewInt(1 << 30)} {
		ct, err := ep.EvalEncrypted(&k.PublicKey, x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(p.Eval(x)) != 0 {
			t.Errorf("E-eval(%v) = %v, plain = %v", x, got, p.Eval(x))
		}
	}
}

func TestEncryptModulusMismatch(t *testing.T) {
	k := testKey(t)
	p, _ := FromRoots([]*big.Int{big.NewInt(5)}, big.NewInt(999983))
	if _, err := p.Encrypt(&k.PublicKey, 1); err == nil {
		t.Error("modulus mismatch accepted")
	}
}

func TestMaskedEvalRootRevealsPayload(t *testing.T) {
	k := testKey(t)
	codec, err := NewCodec(&k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := rel.Int(100), rel.Int(200)
	roots := []*big.Int{RootOfValue(v1), RootOfValue(v2)}
	p, _ := FromRoots(roots, k.N)
	ep, _ := p.Encrypt(&k.PublicKey, 1)

	// Root hit: payload recoverable.
	m, err := codec.PackValue(v1, []byte("tuples-of-100"))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ep.MaskedEval(&k.PublicKey, RootOfValue(v1), m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := k.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	root, payload, ok := codec.Unpack(dec)
	if !ok || string(payload) != "tuples-of-100" || root.Cmp(RootOfValue(v1)) != 0 {
		t.Errorf("root-hit unpack: ok=%v payload=%q", ok, payload)
	}

	// Non-root: decryption is garbage and Unpack rejects it.
	v3 := rel.Int(300)
	m3, _ := codec.PackValue(v3, []byte("tuples-of-300"))
	ct3, err := ep.MaskedEval(&k.PublicKey, RootOfValue(v3), m3)
	if err != nil {
		t.Fatal(err)
	}
	dec3, _ := k.Decrypt(ct3)
	if _, _, ok := codec.Unpack(dec3); ok {
		t.Error("non-root masked eval unpacked as valid (2^-64 event)")
	}
}

func TestCodecPackUnpackRoundtrip(t *testing.T) {
	k := testKey(t)
	codec, _ := NewCodec(&k.PublicKey)
	f := func(id int64, payload []byte) bool {
		if len(payload) > codec.MaxPayload() {
			payload = payload[:codec.MaxPayload()]
		}
		m, err := codec.PackValue(rel.Int(id), payload)
		if err != nil {
			return false
		}
		root, got, ok := codec.Unpack(m)
		if !ok || root.Cmp(RootOfValue(rel.Int(id))) != 0 {
			return false
		}
		if len(got) != len(payload) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCodecRejects(t *testing.T) {
	k := testKey(t)
	codec, _ := NewCodec(&k.PublicKey)
	// Oversized payload.
	if _, err := codec.PackValue(rel.Int(1), make([]byte, codec.MaxPayload()+1)); err == nil {
		t.Error("oversized payload packed")
	}
	// Random plaintexts unpack as garbage.
	for i := 0; i < 50; i++ {
		r, _ := k.RandomPlaintext(rand.Reader)
		if _, _, ok := codec.Unpack(r); ok {
			t.Fatal("random plaintext unpacked as valid")
		}
	}
	// Negative and oversized integers rejected.
	if _, _, ok := codec.Unpack(big.NewInt(-1)); ok {
		t.Error("negative unpacked")
	}
	huge := new(big.Int).Lsh(big.NewInt(1), uint(8*codec.Width+1))
	if _, _, ok := codec.Unpack(huge); ok {
		t.Error("oversized unpacked")
	}
}

func TestNewCodecSmallKey(t *testing.T) {
	small, err := paillier.GenerateKey(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCodec(&small.PublicKey); err == nil {
		t.Error("64-bit key accepted for packing")
	}
}

func TestBucketsEndToEnd(t *testing.T) {
	k := testKey(t)
	codec, _ := NewCodec(&k.PublicKey)
	var roots []*big.Int
	for i := 0; i < 20; i++ {
		roots = append(roots, RootOfValue(rel.Int(int64(i))))
	}
	bs, err := BuildBuckets(roots, 5, k.N)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Polys) != 5 {
		t.Fatalf("buckets = %d, want 5", len(bs.Polys))
	}
	deg := bs.MaxDegree()
	for _, p := range bs.Polys {
		if p.Degree() != deg {
			t.Error("bucket degrees not uniform (loads leak)")
		}
	}
	eb, err := bs.Encrypt(&k.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Match: value 7 is in the chooser set.
	m, _ := codec.PackValue(rel.Int(7), []byte("p7"))
	ct, err := eb.MaskedEval(&k.PublicKey, RootOfValue(rel.Int(7)), m)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := k.Decrypt(ct)
	if _, payload, ok := codec.Unpack(dec); !ok || string(payload) != "p7" {
		t.Errorf("bucketed match failed: ok=%v payload=%q", ok, payload)
	}
	// Non-match.
	m2, _ := codec.PackValue(rel.Int(999), []byte("p999"))
	ct2, _ := eb.MaskedEval(&k.PublicKey, RootOfValue(rel.Int(999)), m2)
	dec2, _ := k.Decrypt(ct2)
	if _, _, ok := codec.Unpack(dec2); ok {
		t.Error("bucketed non-match unpacked as valid")
	}
}

func TestBuildBucketsValidation(t *testing.T) {
	k := testKey(t)
	if _, err := BuildBuckets(nil, 3, k.N); err == nil {
		t.Error("no roots accepted")
	}
	if _, err := BuildBuckets([]*big.Int{big.NewInt(1)}, 0, k.N); err == nil {
		t.Error("0 buckets accepted")
	}
}

func TestBucketIndexStable(t *testing.T) {
	r := RootOfValue(rel.String_("key"))
	if BucketIndex(r, 7) != BucketIndex(r, 7) {
		t.Error("bucket index not deterministic")
	}
	spread := map[int]bool{}
	for i := 0; i < 100; i++ {
		spread[BucketIndex(RootOfValue(rel.Int(int64(i))), 8)] = true
	}
	if len(spread) < 4 {
		t.Errorf("bucket assignment badly skewed: %v", spread)
	}
}

func TestUnpackRejectsTamperedTag(t *testing.T) {
	k := testKey(t)
	codec, _ := NewCodec(&k.PublicKey)
	m, err := codec.PackValue(rel.Int(7), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, codec.Width)
	m.FillBytes(buf)
	// Flipping any bit of the embedded tag must make the (constant-time)
	// tag check reject the message.
	for i := RootBytes; i < RootBytes+tagBytes; i++ {
		tampered := make([]byte, len(buf))
		copy(tampered, buf)
		tampered[i] ^= 0x01
		if _, _, ok := codec.Unpack(new(big.Int).SetBytes(tampered)); ok {
			t.Fatalf("tampered tag byte %d accepted", i)
		}
	}
	// Untampered control: still unpacks.
	if _, _, ok := codec.Unpack(new(big.Int).SetBytes(buf)); !ok {
		t.Fatal("control message no longer unpacks")
	}
}

// TestMaskedEvalBatch checks the batch oblivious-evaluation path against
// the scalar MaskedEval semantics: roots of the polynomial reveal their
// payload, non-roots decrypt to garbage, order is preserved across
// worker counts, and length mismatches are rejected.
func TestMaskedEvalBatch(t *testing.T) {
	k := testKey(t)
	pk := &k.PublicKey
	roots := []*big.Int{RootOfValue(rel.Int(1)), RootOfValue(rel.Int(2)), RootOfValue(rel.Int(3))}
	bs, err := BuildBuckets(roots, 2, pk.N)
	if err != nil {
		t.Fatal(err)
	}
	ebs, err := bs.Encrypt(pk, 2)
	if err != nil {
		t.Fatal(err)
	}
	as := []*big.Int{
		roots[0],
		RootOfValue(rel.Int(99)), // not a root
		roots[2],
		roots[1],
	}
	ms := []*big.Int{big.NewInt(1111), big.NewInt(2222), big.NewInt(3333), big.NewInt(4444)}
	for _, workers := range []int{1, 3, 0} {
		cs, err := ebs.MaskedEvalBatch(pk, as, ms, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range cs {
			got, err := k.Decrypt(c)
			if err != nil {
				t.Fatal(err)
			}
			isRoot := i != 1
			if isRoot && got.Cmp(ms[i]) != 0 {
				t.Fatalf("workers=%d: root %d decrypts to %v, want payload %v", workers, i, got, ms[i])
			}
			if !isRoot && got.Cmp(ms[i]) == 0 {
				t.Fatalf("workers=%d: non-root revealed its payload", workers)
			}
		}
	}
	if _, err := ebs.MaskedEvalBatch(pk, as, ms[:2], 2); err == nil {
		t.Error("length mismatch accepted")
	}
}
