// Package pm implements the private-matching substrate of the paper's
// Section 5 protocol (after Freedman, Nissim, Pinkas, EUROCRYPT'04):
// polynomials over the Paillier plaintext space whose roots encode the
// active domain of the join attribute, oblivious (encrypted-coefficient)
// polynomial evaluation, and the "a′ ‖ payload" message packing with which
// a source attaches tuple-set payloads to masked evaluations
//
//	e = E(r·P(a′) + (a′ ‖ payload)).
//
// It also implements FNP's bucketing optimization (hashing inputs into
// buckets with low-degree polynomials), which the paper alludes to when
// noting that "Freedman et al. show how the polynomial can be evaluated
// efficiently".
package pm

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/relation"
)

// RootBytes is the width of a value root: values are mapped into Z_n by a
// truncated SHA-256 of their canonical encoding, so both sources derive
// identical roots for identical join values.
const RootBytes = 16

// RootOfBytes maps a canonical byte encoding (a single value's encoding or
// a composite join key's) to its polynomial-root encoding.
func RootOfBytes(data []byte) *big.Int {
	sum := sha256.Sum256(append([]byte("secmediation/pm-root\x00"), data...))
	return new(big.Int).SetBytes(sum[:RootBytes])
}

// RootOfValue maps an attribute value to its polynomial-root encoding.
func RootOfValue(v relation.Value) *big.Int {
	return RootOfBytes(v.Encode(nil))
}

// Polynomial is P(x) = Σ c_k x^k with coefficients in Z_n, constructed as
// Π (a_i − x) over the root encodings a_i.
type Polynomial struct {
	// Coeffs holds c_0 … c_d (degree order). The coefficients encode a
	// party's private active domain, so their bits must not steer timing
	// before encryption.
	//
	// seclint:secret plaintext set-encoding coefficients
	Coeffs []*big.Int
	// N is the coefficient modulus (the Paillier modulus).
	N *big.Int
}

// FromRoots expands Π (a_i − x) mod n. At least one root is required: the
// protocols never ship an empty polynomial (an empty active domain aborts
// earlier).
func FromRoots(roots []*big.Int, n *big.Int) (*Polynomial, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("pm: polynomial needs at least one root")
	}
	// Start with P(x) = 1 and multiply factor by factor. Factor (a − x)
	// has coefficients [a, −1].
	coeffs := []*big.Int{big.NewInt(1)}
	for _, a := range roots {
		am := new(big.Int).Mod(a, n)
		next := make([]*big.Int, len(coeffs)+1)
		for i := range next {
			next[i] = new(big.Int)
		}
		for i, c := range coeffs {
			// · a contributes to degree i
			t := new(big.Int).Mul(c, am)
			next[i].Add(next[i], t)
			// · (−x) contributes to degree i+1
			next[i+1].Sub(next[i+1], c)
		}
		for i := range next {
			next[i].Mod(next[i], n)
		}
		coeffs = next
	}
	return &Polynomial{Coeffs: coeffs, N: n}, nil
}

// Degree returns the polynomial degree.
func (p *Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates P at x over Z_n (plaintext; used in tests and by the
// bucketing dispatcher).
func (p *Polynomial) Eval(x *big.Int) *big.Int {
	xm := new(big.Int).Mod(x, p.N)
	acc := new(big.Int)
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		acc.Mul(acc, xm)
		acc.Add(acc, p.Coeffs[k])
		acc.Mod(acc, p.N)
	}
	return acc
}

// EncryptedPolynomial is the ciphertext-coefficient form the chooser ships
// to the sender.
type EncryptedPolynomial struct {
	Coeffs []*paillier.Ciphertext
}

// Encrypt encrypts every coefficient under the client's public key across
// a worker pool (workers as in parallel.Resolve; coefficient order is
// preserved). The number of coefficients — hence |domactive| — is visible
// to anyone who sees the result (Table 1's mediator leakage for the PM
// protocol).
func (p *Polynomial) Encrypt(pk *paillier.PublicKey, workers int) (*EncryptedPolynomial, error) {
	if pk.N.Cmp(p.N) != 0 {
		return nil, fmt.Errorf("pm: polynomial modulus differs from key modulus")
	}
	coeffs, err := pk.EncryptBatch(rand.Reader, p.Coeffs, workers)
	if err != nil {
		return nil, err
	}
	return &EncryptedPolynomial{Coeffs: coeffs}, nil
}

// EvalEncrypted computes E(P(a)) from encrypted coefficients by Horner's
// rule: acc ← acc·a + c_k, using MulConst and Add on ciphertexts.
func (ep *EncryptedPolynomial) EvalEncrypted(pk *paillier.PublicKey, a *big.Int) (*paillier.Ciphertext, error) {
	if len(ep.Coeffs) == 0 {
		return nil, fmt.Errorf("pm: empty encrypted polynomial")
	}
	am := new(big.Int).Mod(a, pk.N)
	acc := ep.Coeffs[len(ep.Coeffs)-1]
	for k := len(ep.Coeffs) - 2; k >= 0; k-- {
		acc = pk.Add(pk.MulConst(acc, am), ep.Coeffs[k])
	}
	return acc, nil
}

// MaskedEval computes e = E(r·P(a) + m) for a fresh random r — the
// sender-side operation of Listing 4, steps 5/6. When P(a) = 0 the
// ciphertext decrypts to m; otherwise to a value indistinguishable from
// random.
func (ep *EncryptedPolynomial) MaskedEval(pk *paillier.PublicKey, a, m *big.Int) (*paillier.Ciphertext, error) {
	pa, err := ep.EvalEncrypted(pk, a)
	if err != nil {
		return nil, err
	}
	r, err := pk.RandomPlaintext(rand.Reader)
	if err != nil {
		return nil, err
	}
	masked := pk.AddPlain(pk.MulConst(pa, r), m)
	// Re-randomize so the ciphertext is unlinkable to the coefficient
	// ciphertexts even for m = 0 edge cases.
	return pk.Rerandomize(rand.Reader, masked)
}
