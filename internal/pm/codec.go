package pm

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/relation"
)

// tagBytes is the width of the integrity tag embedded in packed messages.
// The paper's client recognizes matches as decryptions "of the form
// (a_k ‖ Tup(a_k))"; the tag makes that form robustly recognizable —
// a random (non-matching) decryption passes with probability 2^-64.
const tagBytes = 8

// lenBytes encodes the payload length inside the packed message.
const lenBytes = 4

// Codec packs (value-root ‖ tag ‖ payload) messages into the Paillier
// plaintext space with a fixed byte width, so that decryption can parse
// them back without ambiguity.
type Codec struct {
	// Width is the fixed message width in bytes; every packed message is
	// an integer whose Width-byte big-endian representation carries the
	// fields.
	Width int
}

// NewCodec derives the codec for a Paillier key: the width is chosen so
// that every packed message stays strictly below n.
func NewCodec(pk *paillier.PublicKey) (*Codec, error) {
	w := (pk.N.BitLen() - 16) / 8
	if w < RootBytes+tagBytes+lenBytes+1 {
		return nil, fmt.Errorf("pm: modulus too small for message packing (%d bits)", pk.N.BitLen())
	}
	return &Codec{Width: w}, nil
}

// MaxPayload returns the maximum payload size in bytes.
func (c *Codec) MaxPayload() int { return c.Width - RootBytes - tagBytes - lenBytes }

func tagOf(root []byte) []byte {
	sum := sha256.Sum256(append([]byte("secmediation/pm-tag\x00"), root...))
	return sum[:tagBytes]
}

// Pack builds the plaintext integer for (root ‖ payload). The root is a
// value-root encoding (RootOfValue / RootOfBytes).
func (c *Codec) Pack(r *big.Int, payload []byte) (*big.Int, error) {
	if len(payload) > c.MaxPayload() {
		return nil, fmt.Errorf("pm: payload of %d bytes exceeds maximum %d (use the hybrid-payload mode of footnote 2)", len(payload), c.MaxPayload())
	}
	if r.Sign() < 0 || r.BitLen() > 8*RootBytes {
		return nil, fmt.Errorf("pm: root out of range")
	}
	root := make([]byte, RootBytes)
	r.FillBytes(root)
	buf := make([]byte, c.Width)
	copy(buf, root)
	copy(buf[RootBytes:], tagOf(root))
	binary.BigEndian.PutUint32(buf[RootBytes+tagBytes:], uint32(len(payload)))
	copy(buf[RootBytes+tagBytes+lenBytes:], payload)
	return new(big.Int).SetBytes(buf), nil
}

// PackValue is Pack over a single attribute value.
func (c *Codec) PackValue(v relation.Value, payload []byte) (*big.Int, error) {
	return c.Pack(RootOfValue(v), payload)
}

// Unpack parses a decrypted plaintext. ok is false when the message does
// not carry the (root ‖ tag ‖ payload) structure — i.e. when the masked
// evaluation did not hit a polynomial root and decrypted to randomness.
func (c *Codec) Unpack(m *big.Int) (root *big.Int, payload []byte, ok bool) {
	if m.Sign() < 0 || m.BitLen() > 8*c.Width {
		return nil, nil, false
	}
	buf := make([]byte, c.Width)
	m.FillBytes(buf)
	rootB := buf[:RootBytes]
	// Constant-time tag check: Unpack runs on every candidate
	// decryption, so an early-exit compare would let a timing observer
	// distinguish near-miss tags from random ones (seclint: subtlecmp).
	if subtle.ConstantTimeCompare(buf[RootBytes:RootBytes+tagBytes], tagOf(rootB)) != 1 {
		return nil, nil, false
	}
	n := int(binary.BigEndian.Uint32(buf[RootBytes+tagBytes:]))
	if n > c.MaxPayload() {
		return nil, nil, false
	}
	start := RootBytes + tagBytes + lenBytes
	payload = buf[start : start+n]
	// Trailing bytes must be zero padding.
	for _, b := range buf[start+n:] {
		if b != 0 {
			return nil, nil, false
		}
	}
	return new(big.Int).SetBytes(rootB), payload, true
}
