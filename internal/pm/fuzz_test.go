package pm

import (
	"crypto/rand"
	"math/big"
	"testing"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
)

// FuzzUnpack: Unpack over arbitrary integers must never panic and must
// only accept properly tagged messages.
func FuzzUnpack(f *testing.F) {
	key, err := paillier.GenerateKey(rand.Reader, 512)
	if err != nil {
		f.Fatal(err)
	}
	codec, err := NewCodec(&key.PublicKey)
	if err != nil {
		f.Fatal(err)
	}
	valid, _ := codec.Pack(big.NewInt(12345), []byte("payload"))
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := new(big.Int).SetBytes(data)
		root, payload, ok := codec.Unpack(m)
		if !ok {
			return
		}
		// Anything accepted must repack to the same integer.
		re, err := codec.Pack(root, payload)
		if err != nil {
			t.Fatalf("accepted message does not repack: %v", err)
		}
		if re.Cmp(m) != 0 {
			t.Fatal("repacked message differs")
		}
	})
}
