package pm

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/parallel"
)

// BucketIndex assigns a root to one of b buckets by hashing; chooser and
// sender agree on the assignment because it depends only on the root.
func BucketIndex(root *big.Int, b int) int {
	rb := make([]byte, RootBytes)
	root.FillBytes(rb)
	sum := sha256.Sum256(append([]byte("secmediation/pm-bucket\x00"), rb...))
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(b))
}

// Buckets is FNP's efficiency optimization: the chooser hashes its inputs
// into b buckets and interpolates one low-degree polynomial per bucket,
// all padded to a uniform degree so bucket loads stay hidden. The sender
// evaluates only the polynomial of the bucket its own value falls into,
// reducing per-evaluation cost from Θ(|dom|) to Θ(max-load).
type Buckets struct {
	// Polys holds one polynomial per bucket, uniform degree.
	Polys []*Polynomial
	// N is the shared modulus.
	N *big.Int
}

// BuildBuckets distributes the roots over b buckets and pads every bucket
// with random filler roots (negligibly likely to collide with a real value
// root) up to the maximum load.
func BuildBuckets(roots []*big.Int, b int, n *big.Int) (*Buckets, error) {
	if b < 1 {
		return nil, fmt.Errorf("pm: bucket count %d < 1", b)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("pm: no roots")
	}
	groups := make([][]*big.Int, b)
	for _, r := range roots {
		i := BucketIndex(r, b)
		groups[i] = append(groups[i], r)
	}
	maxLoad := 1
	for _, g := range groups {
		if len(g) > maxLoad {
			maxLoad = len(g)
		}
	}
	bs := &Buckets{N: n, Polys: make([]*Polynomial, b)}
	limit := new(big.Int).Lsh(big.NewInt(1), 8*RootBytes)
	for i, g := range groups {
		padded := append([]*big.Int(nil), g...)
		for len(padded) < maxLoad {
			f, err := rand.Int(rand.Reader, limit)
			if err != nil {
				return nil, fmt.Errorf("pm: filler root: %w", err)
			}
			padded = append(padded, f)
		}
		p, err := FromRoots(padded, n)
		if err != nil {
			return nil, err
		}
		bs.Polys[i] = p
	}
	return bs, nil
}

// MaxDegree returns the uniform per-bucket polynomial degree.
func (b *Buckets) MaxDegree() int { return b.Polys[0].Degree() }

// EncryptedBuckets is the ciphertext form shipped to the sender.
type EncryptedBuckets struct {
	Polys []*EncryptedPolynomial
}

// Encrypt encrypts every bucket polynomial. The (bucket, coefficient)
// space is flattened before fanning out over the worker pool, so the pool
// stays evenly loaded whether the parameters give one huge polynomial or
// many low-degree ones.
func (b *Buckets) Encrypt(pk *paillier.PublicKey, workers int) (*EncryptedBuckets, error) {
	if pk.N.Cmp(b.N) != 0 {
		return nil, fmt.Errorf("pm: bucket modulus differs from key modulus")
	}
	stride := b.MaxDegree() + 1 // every bucket is padded to uniform degree
	plain := make([]*big.Int, len(b.Polys)*stride)
	for i := range plain {
		plain[i] = b.Polys[i/stride].Coeffs[i%stride]
	}
	flat, err := pk.EncryptBatch(rand.Reader, plain, workers)
	if err != nil {
		return nil, err
	}
	out := &EncryptedBuckets{Polys: make([]*EncryptedPolynomial, len(b.Polys))}
	for i := range b.Polys {
		out.Polys[i] = &EncryptedPolynomial{Coeffs: flat[i*stride : (i+1)*stride]}
	}
	return out, nil
}

// MaskedEval evaluates against the bucket the root belongs to.
func (eb *EncryptedBuckets) MaskedEval(pk *paillier.PublicKey, a, m *big.Int) (*paillier.Ciphertext, error) {
	if len(eb.Polys) == 0 {
		return nil, fmt.Errorf("pm: empty encrypted buckets")
	}
	i := BucketIndex(a, len(eb.Polys))
	return eb.Polys[i].MaskedEval(pk, a, m)
}

// MaskedEvalBatch runs MaskedEval for every (root, message) pair across a
// worker pool (workers as in parallel.Resolve), preserving order — the
// sender-side hot loop of the PM protocol's oblivious-evaluation step.
// The key's fixed-base randomizer table is built eagerly before the pool
// starts, so each evaluation's mask-and-rerandomize encryptions are
// windowed table lookups instead of full-width exponentiations.
func (eb *EncryptedBuckets) MaskedEvalBatch(pk *paillier.PublicKey, as, ms []*big.Int, workers int) ([]*paillier.Ciphertext, error) {
	if len(as) != len(ms) {
		return nil, fmt.Errorf("pm: %d roots but %d messages", len(as), len(ms))
	}
	if len(as) > 1 {
		if err := pk.Precompute(rand.Reader); err != nil {
			return nil, err
		}
	}
	return parallel.Map(len(as), workers, func(i int) (*paillier.Ciphertext, error) {
		return eb.MaskedEval(pk, as[i], ms[i])
	})
}
