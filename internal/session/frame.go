package session

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/secmediation/secmediation/internal/transport"
)

// The mux frame header lives in the transport.Message type tag, so a
// multiplexed link reuses the existing gob stream unchanged and the
// per-link wire-byte accounting automatically includes the mux
// overhead. The format is
//
//	mux.<op>.<sid>[.<rest>]
//
// where <op> is a one-byte opcode, <sid> the decimal session ID, and
// <rest> the inner message type (data frames) or the reject reason
// (reject frames). Bodies travel verbatim: a data frame's body IS the
// session message's body, with no re-encoding.
const framePrefix = "mux."

// Frame opcodes.
const (
	opOpen   byte = 'o' // open a new session (sid chosen by the sender)
	opData   byte = 'd' // payload frame for an open session
	opClose  byte = 'c' // orderly close of a session
	opReject byte = 'r' // refuse a session the peer opened
)

// Reject-frame reasons. An overload reject may append a retry-after
// hint in whole milliseconds ("overloaded:250"); a draining reject
// means the server is shutting down and the session should be retried
// elsewhere (or later), not treated as a failure.
const (
	rejectOverloaded = "overloaded"
	rejectDraining   = "draining"
)

// rejectReason renders the reject-frame reason field, appending the
// retry-after hint (rounded up to whole milliseconds) when positive.
func rejectReason(base string, hint time.Duration) string {
	if hint <= 0 {
		return base
	}
	ms := int64((hint + time.Millisecond - 1) / time.Millisecond)
	return base + ":" + strconv.FormatInt(ms, 10)
}

// parseReject maps a reject-frame reason back to the typed error the
// opener's operations surface. Unknown reasons (newer peers, mangled
// frames) degrade to the overload shape — still typed, still
// retryable.
func parseReject(sid uint64, reason string) error {
	base, hintStr, _ := strings.Cut(reason, ":")
	if base == rejectDraining {
		return fmt.Errorf("session %d refused by peer: %w", sid, ErrDraining)
	}
	err := fmt.Errorf("session %d refused by peer: %w", sid, ErrOverloaded)
	if ms, perr := strconv.ParseInt(hintStr, 10, 64); perr == nil && ms > 0 {
		return &retryHintError{err: err, hint: time.Duration(ms) * time.Millisecond}
	}
	return err
}

// retryHintError decorates a reject error with the server-supplied
// retry-after hint. It is matched structurally (errors.As on an
// interface with RetryAfter) by internal/resilience, which keeps this
// package free of a dependency on the orchestrator.
type retryHintError struct {
	err  error
	hint time.Duration
}

func (e *retryHintError) Error() string { return e.err.Error() }
func (e *retryHintError) Unwrap() error { return e.err }

// RetryAfter returns the peer's suggested backoff before retrying.
func (e *retryHintError) RetryAfter() time.Duration { return e.hint }

// IsMuxFrame reports whether a message type tag carries the mux frame
// header — the sniff a Server uses to serve plain single-session links
// and multiplexed links from the same listener.
func IsMuxFrame(typ string) bool {
	return strings.HasPrefix(typ, framePrefix)
}

// parseFrame splits a frame type tag into opcode, session ID and the
// trailing field. Malformed frames return ok=false and are discarded
// (and counted) by the demux loop rather than failing the link: a
// single damaged header must not take sibling sessions down.
func parseFrame(typ string) (op byte, sid uint64, rest string, ok bool) {
	tail, found := strings.CutPrefix(typ, framePrefix)
	if !found || len(tail) < 3 || tail[1] != '.' {
		return 0, 0, "", false
	}
	op = tail[0]
	switch op {
	case opOpen, opData, opClose, opReject:
	default:
		return 0, 0, "", false
	}
	sidStr, rest, _ := strings.Cut(tail[2:], ".")
	sid, err := strconv.ParseUint(sidStr, 10, 64)
	if err != nil {
		return 0, 0, "", false
	}
	return op, sid, rest, true
}

// dataFrame wraps a session message into a mux data frame. The body is
// shared, not copied: frames carry already-encoded payloads.
//
// seclint:wire wraps an already-encoded payload body for the shared link
func dataFrame(sid uint64, m transport.Message) transport.Message {
	return transport.Message{
		Type: framePrefix + string(opData) + "." + strconv.FormatUint(sid, 10) + "." + m.Type,
		Body: m.Body,
	}
}

// controlFrame builds a bodyless open/close/reject frame; reason is
// appended for rejects.
func controlFrame(op byte, sid uint64, reason string) transport.Message {
	typ := framePrefix + string(op) + "." + strconv.FormatUint(sid, 10)
	if reason != "" {
		typ += "." + reason
	}
	return transport.Message{Type: typ}
}

// unwrapData recovers the session message from a data frame.
func unwrapData(rest string, frame transport.Message) transport.Message {
	return transport.Message{Type: rest, Body: frame.Body}
}
