package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// TestServerGracefulDrain pins the shutdown contract: after Shutdown
// begins, new session opens are refused with a typed ErrDraining while
// the in-flight session runs to completion, and Shutdown returns only
// once it has.
func TestServerGracefulDrain(t *testing.T) {
	snap := testutil.Snapshot()
	defer testutil.CheckGoroutines(t, snap)

	reg := telemetry.NewRegistry()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := &Server{
		Handler: func(c transport.Conn) error {
			started <- struct{}{}
			<-release
			return echoHandler(c)
		},
		Telemetry: reg,
		Logf:      t.Logf,
	}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	conn, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	mux := NewMux(conn, Config{})
	defer func() {
		if err := mux.Close(); err != nil {
			t.Logf("mux close: %v", err)
		}
	}()

	inflight, err := mux.Open()
	if err != nil {
		t.Fatalf("open in-flight session: %v", err)
	}
	inflight.SetTimeout(5 * time.Second)
	if err := inflight.Send(transport.Message{Type: "held"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight session never reached the handler")
	}

	// Begin the drain: close the listener (Serve returns nil), then
	// Shutdown with a generous deadline.
	if err := l.Close(); err != nil {
		t.Fatalf("close listener: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v, want nil on closed listener", err)
	}
	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// Wait until the drain flag is visible, then try to open a new
	// session on the still-live link: it must be refused with
	// ErrDraining, typed end to end.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}
	rejected, err := mux.Open()
	if err != nil {
		t.Fatalf("open during drain: %v (the refusal arrives async)", err)
	}
	rejected.SetTimeout(5 * time.Second)
	if _, err := rejected.Recv(); !errors.Is(err, ErrDraining) {
		t.Fatalf("recv on drained session: %v, want ErrDraining", err)
	}

	// Shutdown must still be waiting on the in-flight session.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned %v before the in-flight session finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Let the in-flight session finish; the handler echoes until EOF.
	close(release)
	if _, err := inflight.Expect("held"); err != nil {
		t.Fatalf("in-flight echo during drain: %v", err)
	}
	if err := inflight.Close(); err != nil {
		t.Fatalf("close in-flight session: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v, want nil (drain completed in time)", err)
	}

	if got := reg.Counter("sessions_drained").Value(); got < 1 {
		t.Errorf("sessions_drained = %d, want >= 1", got)
	}
	if got := reg.Counter("sessions_rejected_draining").Value(); got < 1 {
		t.Errorf("sessions_rejected_draining = %d, want >= 1", got)
	}
	if got := reg.Counter("sessions_completed").Value(); got < 1 {
		t.Errorf("sessions_completed = %d, want >= 1", got)
	}
}

// TestServerDrainDeadline pins the force-close arm: when the drain
// deadline expires with a session still in flight, Shutdown closes the
// physical links (failing the stuck session with a typed link error)
// and reports ctx.Err().
func TestServerDrainDeadline(t *testing.T) {
	snap := testutil.Snapshot()
	defer testutil.CheckGoroutines(t, snap)

	srv := &Server{
		// The handler parks on the session itself, so the force-close
		// is what unblocks it.
		Handler: echoHandler,
		Logf:    t.Logf,
	}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	conn, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	mux := NewMux(conn, Config{})
	defer func() {
		if err := mux.Close(); err != nil {
			t.Logf("mux close: %v", err)
		}
	}()
	st, err := mux.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	st.SetTimeout(5 * time.Second)
	if err := st.Send(transport.Message{Type: "stuck"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := st.Expect("stuck"); err != nil {
		t.Fatalf("echo: %v", err)
	}

	if err := l.Close(); err != nil {
		t.Fatalf("close listener: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = testutil.WithinDeadline(t, 5*time.Second, func() error {
		return srv.Shutdown(ctx)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown past deadline: %v, want context.DeadlineExceeded", err)
	}
	// The force-close reached the client: the session fails promptly
	// with a typed error instead of hanging.
	if _, err := st.Recv(); err == nil {
		t.Fatal("recv on force-closed session succeeded, want error")
	}
}
