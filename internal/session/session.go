// Package session is the multi-tenant session layer of the mediation
// system: it multiplexes many concurrent protocol sessions over one
// physical transport link per peer, so a long-lived mediator can serve
// overlapping queries from many clients without dialing (or accepting) a
// fresh TCP connection per query.
//
// The layer has four pieces:
//
//   - A Mux turns one transport.Conn into many virtual links. Each frame
//     carries a session ID and an opcode (open/data/close/reject) in the
//     message type header; payload bodies travel untouched, so the gob
//     stream underneath never re-encodes. Open and Accept return *Stream
//     values satisfying transport.Conn — every protocol in
//     internal/mediation runs over a session unchanged.
//
//   - A Gate is the admission controller: a bounded semaphore with a
//     bounded wait queue. When both are full, new sessions are rejected
//     with ErrOverloaded instead of stacking goroutines — a saturated
//     party degrades gracefully and the client sees a typed error it can
//     back off on.
//
//   - A Server is the long-lived serve loop mediator and datasources
//     run: it survives transient Accept failures with capped backoff
//     (never log.Fatalf), sniffs whether an inbound link speaks the mux
//     framing (plain single-session links still work), applies the Gate,
//     and runs one handler per session with per-session traffic
//     telemetry.
//
//   - A Pool keeps one persistent multiplexed link per dialed peer:
//     Open returns a fresh session over the cached link, dialing only on
//     first use and redialing transparently when a link dies. The
//     mediator's per-relation routes are Pool-backed, so a thousand
//     queries against the same two sources cost one TCP dial each, not a
//     thousand.
//
// Failure isolation: a fault that corrupts or loses a single frame
// damages only the session the frame belongs to — that session aborts
// with a typed error while sibling sessions on the same link complete
// (see the chaos suite). A failure of the physical link itself fails
// every session on it, each with the link error.
package session

import (
	"errors"
	"sync/atomic"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// ErrOverloaded reports that the peer (or the local gate) refused a new
// session because its concurrent-session capacity and wait queue are
// exhausted. Match it with errors.Is; clients should back off and retry
// rather than treat it as a protocol failure. The reject may carry a
// server-supplied retry-after hint, surfaced through a RetryAfter()
// method on the wrapping error (see internal/resilience.RetryAfter).
var ErrOverloaded = errors.New("session: overloaded: too many concurrent sessions")

// ErrDraining reports that the peer refused a new session because it is
// shutting down gracefully (Server.Shutdown): in-flight sessions are
// finishing, new ones must go elsewhere. Match it with errors.Is; the
// retry orchestrator (internal/resilience) classifies it retryable.
var ErrDraining = errors.New("session: draining: server is shutting down")

// ErrMuxClosed reports an operation on a mux that was closed locally.
var ErrMuxClosed = errors.New("session: mux closed")

// Config tunes one Mux. The zero value is a valid client-side
// configuration with sane defaults.
type Config struct {
	// Server marks the accept side of the link. The two sides draw
	// session IDs from disjoint parities (client odd, server even), so
	// both may open sessions without coordination.
	Server bool
	// QueueDepth bounds each session's receive queue (frames demuxed but
	// not yet consumed). When a queue is full the demux loop blocks —
	// backpressure on the shared link — until the session consumes or
	// closes. Default 64.
	QueueDepth int
	// AcceptBacklog bounds sessions opened by the peer but not yet
	// claimed with Accept. Opens beyond it are rejected with
	// ErrOverloaded. Default 64.
	AcceptBacklog int
	// MaxSessions, when positive, bounds the live sessions the peer may
	// hold open on this link; opens beyond it are rejected with
	// ErrOverloaded. This is the per-link backstop — cross-link
	// admission control is the Server Gate's job. Default 0 (unlimited).
	MaxSessions int
	// Telemetry optionally counts mux activity (sessions opened,
	// accepted, rejected, discarded frames). Nil records nothing.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 64
	}
	return c
}

// Gate is the admission controller for a Server: at most MaxActive
// sessions run concurrently, at most MaxWaiting more may queue for a
// slot, and everything beyond that is rejected with ErrOverloaded.
// A nil *Gate admits everything. All methods are safe for concurrent
// use.
type Gate struct {
	sem        chan struct{}
	maxWaiting int64
	waiting    atomic.Int64
	reg        *telemetry.Registry
}

// NewGate builds a gate admitting maxActive concurrent sessions with a
// wait queue of maxWaiting. maxActive <= 0 returns a nil gate (no
// admission control). The registry (nil-safe) receives the
// sessions_active and sessions_waiting queue-depth gauges and the
// sessions_rejected counter.
func NewGate(maxActive, maxWaiting int, reg *telemetry.Registry) *Gate {
	if maxActive <= 0 {
		return nil
	}
	if maxWaiting < 0 {
		maxWaiting = 0
	}
	return &Gate{
		sem:        make(chan struct{}, maxActive),
		maxWaiting: int64(maxWaiting),
		reg:        reg,
	}
}

// Acquire claims a session slot, waiting in the bounded queue when all
// slots are busy. It returns ErrOverloaded without blocking once the
// queue is full too. A nil gate admits immediately.
func (g *Gate) Acquire() error {
	if g == nil {
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		g.gauges()
		return nil
	default:
	}
	if g.waiting.Add(1) > g.maxWaiting {
		g.waiting.Add(-1)
		if g.reg.Enabled() {
			g.reg.Counter("sessions_rejected").Add(1)
		}
		return ErrOverloaded
	}
	g.gauges()
	g.sem <- struct{}{}
	g.waiting.Add(-1)
	g.gauges()
	return nil
}

// Release returns a slot claimed with Acquire. Calling it without a
// matching successful Acquire is a programming error.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	<-g.sem
	g.gauges()
}

// Active returns the number of admitted sessions currently running.
func (g *Gate) Active() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// Waiting returns the number of sessions queued for a slot.
func (g *Gate) Waiting() int {
	if g == nil {
		return 0
	}
	return int(g.waiting.Load())
}

// gauges exports the queue depths.
func (g *Gate) gauges() {
	if !g.reg.Enabled() {
		return
	}
	g.reg.Gauge("sessions_active").Set(int64(len(g.sem)))
	g.reg.Gauge("sessions_waiting").Set(g.waiting.Load())
}
