// The pool↔breaker integration regression lives in an external test
// package: resilience imports session (BreakerSet satisfies
// session.DialGovernor), so an in-package test could not import it
// back without a cycle.
package session_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/resilience"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// breakerNet hands out in-memory links whose server side runs an
// echoing accept loop, retaining the client conns so the test can kill
// a live link deterministically (a closed conn fails the cached mux's
// next frame synchronously).
type breakerNet struct {
	mu    sync.Mutex
	dials int
	conns []transport.Conn
	muxes []*session.Mux
}

func (n *breakerNet) dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dials++
	client, server := transport.Pair()
	sm := session.NewMux(server, session.Config{Server: true})
	n.conns = append(n.conns, client)
	n.muxes = append(n.muxes, sm)
	go func() {
		for {
			st, err := sm.Accept()
			if err != nil {
				return
			}
			go func() {
				defer st.Close()
				for {
					m, err := st.Recv()
					if err != nil {
						return
					}
					if err := st.Send(m); err != nil {
						return
					}
				}
			}()
		}
	}()
	return client, nil
}

func (n *breakerNet) dialCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials
}

func (n *breakerNet) killLatestLink(t *testing.T) {
	t.Helper()
	n.mu.Lock()
	conn := n.conns[len(n.conns)-1]
	n.mu.Unlock()
	if err := conn.Close(); err != nil {
		t.Fatalf("kill cached link: %v", err)
	}
}

func (n *breakerNet) close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.muxes {
		if err := m.Close(); err != nil {
			continue
		}
	}
}

// echo opens a session to addr and bounces one message through it.
func echo(p *session.Pool, addr string) error {
	st, err := p.Open(addr)
	if err != nil {
		return err
	}
	defer st.Close()
	st.SetTimeout(5 * time.Second)
	if err := st.Send(transport.Message{Type: "ping"}); err != nil {
		return err
	}
	_, err = st.Expect("ping")
	return err
}

// TestPoolRedialWhileBreakerOpen checks the redial path against a real
// circuit breaker: when the cached link dies while the peer's breaker
// is open, the transparent redial must fast-fail with ErrCircuitOpen
// instead of burning a physical dial, and the same address must recover
// once the probe timer re-admits one.
func TestPoolRedialWhileBreakerOpen(t *testing.T) {
	snap := testutil.Snapshot()
	net := &breakerNet{}
	now := time.Unix(1000, 0)
	set := resilience.NewBreakerSet(resilience.BreakerConfig{
		Window:      4,
		MinSamples:  2,
		FailureRate: 0.5,
		OpenTimeout: time.Second,
		Now:         func() time.Time { return now },
	})
	p := &session.Pool{Dial: net.dial, Governor: set}
	defer func() {
		if err := p.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
		net.close()
		testutil.CheckGoroutines(t, snap)
	}()

	const addr = "src1:7000"
	if err := echo(p, addr); err != nil {
		t.Fatalf("first query: %v", err)
	}

	// The peer melts down: enough recorded failures trip its breaker
	// open (the retry orchestrator records query outcomes the same way).
	set.Record(addr, errors.New("peer down"))
	set.Record(addr, errors.New("peer down"))

	// Kill the cached link out from under the pool. The next Open
	// retires it and tries to redial — the open breaker must refuse
	// that dial typed and fast.
	net.killLatestLink(t)
	if _, err := p.Open(addr); !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("open during open breaker: %v, want ErrCircuitOpen", err)
	}
	if got := net.dialCount(); got != 1 {
		t.Fatalf("dialed %d times while the breaker was open, want 1 (no dial burned)", got)
	}

	// Past OpenTimeout the half-open probe admits one dial; it
	// succeeds, the breaker re-closes, and the link is live again.
	now = now.Add(2 * time.Second)
	if err := echo(p, addr); err != nil {
		t.Fatalf("query after breaker re-admits: %v", err)
	}
	if got := net.dialCount(); got != 2 {
		t.Fatalf("dialed %d times after recovery, want 2 (initial + one probe redial)", got)
	}
}
