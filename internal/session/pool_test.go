package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// fakeNet hands out in-memory links whose server side runs an echoing
// session Server-style accept loop, counting dials per address.
type fakeNet struct {
	mu    sync.Mutex
	dials map[string]int
	muxes []*Mux
	fail  bool // next dial fails
}

func newFakeNet() *fakeNet { return &fakeNet{dials: map[string]int{}} }

func (f *fakeNet) dial(addr string) (transport.Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		f.fail = false
		return nil, fmt.Errorf("dial %s: connection refused", addr)
	}
	f.dials[addr]++
	client, server := transport.Pair()
	sm := NewMux(server, Config{Server: true})
	f.muxes = append(f.muxes, sm)
	go func() {
		for {
			st, err := sm.Accept()
			if err != nil {
				return
			}
			go func() {
				defer st.Close()
				for {
					m, err := st.Recv()
					if err != nil {
						return
					}
					if err := st.Send(m); err != nil {
						return
					}
				}
			}()
		}
	}()
	return client, nil
}

func (f *fakeNet) dialCount(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials[addr]
}

func (f *fakeNet) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.muxes {
		if err := m.Close(); err != nil {
			continue
		}
	}
}

// roundTrip opens a session to addr and echoes one message through it.
func roundTrip(p *Pool, addr string) error {
	st, err := p.Open(addr)
	if err != nil {
		return err
	}
	defer st.Close()
	st.SetTimeout(5 * time.Second)
	if err := st.Send(transport.Message{Type: "ping"}); err != nil {
		return err
	}
	_, err = st.Expect("ping")
	return err
}

// TestPoolSharesOneLink checks the no-dial-per-query property: many
// concurrent sessions to one peer share a single physical link.
func TestPoolSharesOneLink(t *testing.T) {
	snap := testutil.Snapshot()
	net := newFakeNet()
	p := &Pool{Dial: net.dial}
	defer func() {
		if err := p.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
		net.close()
		testutil.CheckGoroutines(t, snap)
	}()

	const queries = 12
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := roundTrip(p, "src1:7000"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := net.dialCount("src1:7000"); got != 1 {
		t.Fatalf("dialed %d times for %d queries, want 1", got, queries)
	}
}

// TestPoolRedialsDeadLink checks transparent recovery: when the cached
// link dies, the next Open retires it and redials exactly once.
func TestPoolRedialsDeadLink(t *testing.T) {
	snap := testutil.Snapshot()
	net := newFakeNet()
	p := &Pool{Dial: net.dial}
	defer func() {
		if err := p.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
		net.close()
		testutil.CheckGoroutines(t, snap)
	}()

	const addr = "src1:7000"
	if err := roundTrip(p, addr); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Kill the cached link out from under the pool.
	entry := p.entry(addr)
	if entry.mux == nil {
		t.Fatal("pool has no cached link after a query")
	}
	if err := entry.mux.Close(); err != nil {
		t.Fatalf("kill cached link: %v", err)
	}

	if err := roundTrip(p, addr); err != nil {
		t.Fatalf("query after link death: %v", err)
	}
	if got := net.dialCount(addr); got != 2 {
		t.Fatalf("dialed %d times, want 2 (initial + one redial)", got)
	}
}

// TestPoolDialFailure is the dial-fail → later-success regression: a
// failed dial surfaces immediately (the retry orchestrator owns the
// cadence) but must not poison the address entry — the next Open dials
// fresh and succeeds.
func TestPoolDialFailure(t *testing.T) {
	snap := testutil.Snapshot()
	net := newFakeNet()
	net.fail = true
	p := &Pool{Dial: net.dial}
	defer func() {
		if err := p.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
		net.close()
		testutil.CheckGoroutines(t, snap)
	}()

	if err := roundTrip(p, "src1:7000"); err == nil {
		t.Fatal("open during dial failure succeeded, want error")
	}
	// The peer is back; the same address must work without any reset.
	if err := roundTrip(p, "src1:7000"); err != nil {
		t.Fatalf("open after transient dial failure: %v", err)
	}
	if got := net.dialCount("src1:7000"); got != 1 {
		t.Fatalf("successful dials = %d, want 1", got)
	}
}

// governorFunc adapts funcs to DialGovernor for tests.
type governorFunc struct {
	allow  func(addr string) error
	record func(addr string, err error)
}

func (g governorFunc) Allow(addr string) error       { return g.allow(addr) }
func (g governorFunc) Record(addr string, err error) { g.record(addr, err) }

// TestPoolGovernor checks the breaker seam: Allow gates the dial (a
// refusal surfaces typed and undialed), Record sees every outcome.
func TestPoolGovernor(t *testing.T) {
	snap := testutil.Snapshot()
	net := newFakeNet()
	refuse := errors.New("circuit open")
	var mu sync.Mutex
	var recorded []error
	blocked := false
	gov := governorFunc{
		allow: func(addr string) error {
			mu.Lock()
			defer mu.Unlock()
			if blocked {
				return refuse
			}
			return nil
		},
		record: func(addr string, err error) {
			mu.Lock()
			recorded = append(recorded, err)
			mu.Unlock()
		},
	}
	p := &Pool{Dial: net.dial, Governor: gov}
	defer func() {
		if err := p.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
		net.close()
		testutil.CheckGoroutines(t, snap)
	}()

	mu.Lock()
	blocked = true
	mu.Unlock()
	if _, err := p.Open("src1:7000"); !errors.Is(err, refuse) {
		t.Fatalf("open under refusing governor: %v, want %v", err, refuse)
	}
	mu.Lock()
	blocked = false
	mu.Unlock()
	if err := roundTrip(p, "src1:7000"); err != nil {
		t.Fatalf("open after governor re-admits: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recorded) != 1 || recorded[0] != nil {
		t.Fatalf("recorded outcomes = %v, want one success", recorded)
	}
}

// TestPoolClose checks sessions fail with ErrMuxClosed once the pool is
// torn down.
func TestPoolClose(t *testing.T) {
	snap := testutil.Snapshot()
	net := newFakeNet()
	p := &Pool{Dial: net.dial}
	defer func() {
		net.close()
		testutil.CheckGoroutines(t, snap)
	}()
	st, err := p.Open("src1:7000")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("pool close: %v", err)
	}
	if err := st.Send(transport.Message{Type: "x"}); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("send after pool close: %v, want ErrMuxClosed", err)
	}
}