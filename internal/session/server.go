package session

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Backoff bounds for the accept loop: a transient Accept failure (file
// descriptor exhaustion, a half-open connection reset) is retried, with
// the delay doubling per consecutive failure up to the cap.
const (
	acceptBackoffMin = 50 * time.Millisecond
	acceptBackoffMax = 2 * time.Second
)

// Acceptor is the listener surface a Server consumes;
// *transport.Listener satisfies it.
type Acceptor interface {
	Accept() (transport.Conn, error)
}

// AcceptTimeout wraps an Acceptor so every accepted link comes up with a
// per-operation timeout already armed. This bounds the Server's sniff of
// the first message — a peer that connects and never speaks cannot park
// a serve goroutine forever. Multiplexed links tolerate the armed
// timeout when idle (the demux loop treats link-level receive timeouts
// as idleness), and protocol sessions re-arm their own deadlines once
// the request arrives.
func AcceptTimeout(l Acceptor, d time.Duration) Acceptor {
	if d <= 0 {
		return l
	}
	return acceptTimeout{l: l, d: d}
}

type acceptTimeout struct {
	l Acceptor
	d time.Duration
}

func (a acceptTimeout) Accept() (transport.Conn, error) {
	conn, err := a.l.Accept()
	if err != nil {
		return nil, err
	}
	conn.SetTimeout(a.d)
	return conn, nil
}

// Server is the long-lived serve loop a mediator or datasource runs: it
// accepts physical links forever (transient accept errors retry with
// capped backoff instead of killing the process), speaks both plain
// single-session links and multiplexed links from the same listener,
// applies Gate admission control, and runs Handler once per session with
// per-session traffic telemetry.
type Server struct {
	// Handler serves one protocol session over one virtual (or plain)
	// link. The Server closes the conn after Handler returns.
	Handler func(conn transport.Conn) error
	// Gate optionally bounds concurrent sessions across all links. Nil
	// admits everything. Sessions rejected by the gate fail the opener
	// with ErrOverloaded.
	Gate *Gate
	// Mux configures the per-link muxes; Server is forced on. A nil
	// Telemetry inherits the Server's.
	Mux Config
	// Telemetry optionally records serve-loop metrics (accept errors,
	// link and session counters, per-session byte histograms). Nil
	// records nothing.
	Telemetry *telemetry.Registry
	// Logf, when set, receives serve-loop diagnostics (accept retries,
	// session failures).
	Logf func(format string, args ...any)
	// RetryAfterHint, when positive, rides on overload rejects as a
	// server-supplied backoff hint: the opener's retry orchestrator
	// (internal/resilience) waits at least this long before re-opening,
	// so a saturated server shapes its own retry load.
	RetryAfterHint time.Duration

	// sleep is the backoff clock; tests shrink it.
	sleep func(time.Duration)
	// links tracks live physical links for the links_active gauge.
	links atomic.Int64
	// draining flips once on Shutdown: new sessions are rejected with
	// ErrDraining while in-flight ones finish.
	draining atomic.Bool
	// sessions tracks in-flight handler invocations for the drain wait.
	sessions atomic.Int64

	connMu sync.Mutex
	conns  map[io.Closer]struct{} // live physical links, force-closed on drain deadline
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of sessions currently inside the Handler.
func (s *Server) InFlight() int { return int(s.sessions.Load()) }

// Shutdown drains the server gracefully: it marks the server draining —
// new sessions (and new links) are refused with a typed ErrDraining
// reject that the opener's retry orchestrator treats as
// retryable-elsewhere — waits for in-flight sessions to finish, then
// closes every remaining physical link so idle persistent peers
// re-dial elsewhere. Callers close their listener before calling
// Shutdown (Serve then returns nil); ctx bounds the drain — when it
// expires, surviving links are closed anyway, aborting whatever still
// rides them, and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.Telemetry.Enabled() {
		s.Telemetry.Gauge("server_draining").Set(1)
	}
	const poll = 5 * time.Millisecond
	for s.sessions.Load() > 0 {
		select {
		case <-ctx.Done():
			s.closeLinks()
			return ctx.Err()
		case <-time.After(poll):
		}
	}
	s.closeLinks()
	return nil
}

// closeLinks force-closes every tracked physical link (multiplexed or
// plain). Sessions still riding one fail with the link error.
func (s *Server) closeLinks() {
	s.connMu.Lock()
	conns := make([]io.Closer, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = nil
	s.connMu.Unlock()
	for _, c := range conns {
		if err := c.Close(); err != nil {
			s.logf("session: drain close link: %v", err)
		}
	}
}

// track registers a live physical link for the drain force-close; it
// reports false when the server is already draining with links swept
// (the caller must close the link itself).
func (s *Server) track(c io.Closer) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining.Load() && s.conns == nil {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[io.Closer]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

// untrack removes a link that closed on its own.
func (s *Server) untrack(c io.Closer) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// Serve accepts links until the listener fails permanently. It returns
// nil when the listener is closed (net.ErrClosed) — the orderly shutdown
// path — and never terminates the process on a transient accept error.
func (s *Server) Serve(l Acceptor) error {
	sleep := s.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := time.Duration(0)
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			s.count("accept_errors")
			s.logf("session: accept failed (retrying): %v", err)
			if backoff < acceptBackoffMin {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			sleep(backoff)
			continue
		}
		backoff = 0
		s.count("links_accepted")
		go s.serveLink(conn)
	}
}

// serveLink classifies one physical link by its first message: a mux
// frame makes it a multiplexed link carrying many sessions, anything
// else a plain single-session link (the first message is replayed to the
// handler, so pre-mux clients keep working).
func (s *Server) serveLink(conn transport.Conn) {
	s.gaugeLinks(1)
	defer s.gaugeLinks(-1)
	first, err := conn.Recv()
	if err != nil {
		// The peer connected and vanished before speaking; nothing to
		// serve.
		if cerr := conn.Close(); cerr != nil {
			s.logf("session: close dead link: %v", cerr)
		}
		return
	}
	if !IsMuxFrame(first.Type) {
		s.servePlain(conn, first)
		return
	}
	cfg := s.Mux
	cfg.Server = true
	if cfg.Telemetry == nil {
		cfg.Telemetry = s.Telemetry
	}
	mux := newMux(conn, cfg, []transport.Message{first})
	if !s.track(mux) {
		// Drained while this link was being set up; refuse it whole.
		if cerr := mux.Close(); cerr != nil {
			s.logf("session: close drained link: %v", cerr)
		}
		return
	}
	defer func() {
		s.untrack(mux)
		if cerr := mux.Close(); cerr != nil {
			s.logf("session: close link: %v", cerr)
		}
	}()
	for {
		st, err := mux.Accept()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, ErrMuxClosed) {
				s.logf("session: link failed: %v", err)
			}
			return
		}
		go s.runSession(st)
	}
}

// servePlain runs a single-session (non-multiplexed) link through the
// gate and handler. Under overload there is no session to reject
// individually, so the link is simply closed.
func (s *Server) servePlain(conn transport.Conn, first transport.Message) {
	// Counted before the draining check so Shutdown's wait observes a
	// session that raced past the flag flip.
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	if s.draining.Load() {
		// A plain link has no reject frame to carry ErrDraining; the
		// close is the signal.
		s.count("sessions_rejected_draining")
		if cerr := conn.Close(); cerr != nil {
			s.logf("session: close drained link: %v", cerr)
		}
		return
	}
	if err := s.Gate.Acquire(); err != nil {
		s.logf("session: plain link rejected: %v", err)
		if cerr := conn.Close(); cerr != nil {
			s.logf("session: close rejected link: %v", cerr)
		}
		return
	}
	defer s.Gate.Release()
	s.handle(&replayConn{conn: conn, first: &first})
}

// runSession admits one multiplexed session and hands it to the
// handler. A drain reject travels back as a typed ErrDraining frame, a
// gate reject as ErrOverloaded (with the server's retry-after hint)
// while sibling sessions proceed.
func (s *Server) runSession(st *Stream) {
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	if s.draining.Load() {
		s.count("sessions_rejected_draining")
		st.RejectDraining()
		return
	}
	if err := s.Gate.Acquire(); err != nil {
		st.RejectOverloaded(s.RetryAfterHint)
		return
	}
	defer s.Gate.Release()
	s.handle(st)
}

// handle runs the Handler for one session and settles its telemetry:
// completion/failure counters and the per-session wire-byte
// histograms.
func (s *Server) handle(conn transport.Conn) {
	err := s.Handler(conn)
	if cerr := conn.Close(); cerr != nil {
		s.logf("session: close session: %v", cerr)
	}
	if err != nil {
		s.count("sessions_failed")
		s.logf("session: handler: %v", err)
	} else {
		s.count("sessions_completed")
	}
	if s.draining.Load() {
		// An in-flight session that ran to completion under drain — the
		// graceful-shutdown contract working as intended.
		s.count("sessions_drained")
	}
	if s.Telemetry.Enabled() {
		st := conn.Stats()
		s.Telemetry.Histogram("session_bytes_sent").Observe(st.BytesSent())
		s.Telemetry.Histogram("session_bytes_recv").Observe(st.BytesRecv())
	}
}

func (s *Server) count(name string) {
	if s.Telemetry.Enabled() {
		s.Telemetry.Counter(name).Add(1)
	}
}

func (s *Server) gaugeLinks(delta int64) {
	n := s.links.Add(delta)
	if s.Telemetry.Enabled() {
		s.Telemetry.Gauge("links_active").Set(n)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// replayConn re-delivers the message the Server consumed while sniffing
// a plain link, then delegates to the wrapped conn.
type replayConn struct {
	conn  transport.Conn
	mu    sync.Mutex
	first *transport.Message
}

func (r *replayConn) Recv() (transport.Message, error) {
	r.mu.Lock()
	if m := r.first; m != nil {
		r.first = nil
		r.mu.Unlock()
		return *m, nil
	}
	r.mu.Unlock()
	return r.conn.Recv()
}

// Expect must route through the replaying Recv, not the wrapped conn's.
func (r *replayConn) Expect(typ string) (transport.Message, error) {
	m, err := r.Recv()
	if err != nil {
		return transport.Message{}, err
	}
	if m.Type != typ {
		return transport.Message{}, fmt.Errorf("transport: expected message %q, got %q", typ, m.Type)
	}
	return m, nil
}

func (r *replayConn) Send(m transport.Message) error { return r.conn.Send(m) }
func (r *replayConn) Close() error                   { return r.conn.Close() }
func (r *replayConn) SetTimeout(d time.Duration)     { r.conn.SetTimeout(d) }
func (r *replayConn) Stats() *transport.Stats        { return r.conn.Stats() }
