package session

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/secmediation/secmediation/internal/transport"
)

// Mux multiplexes many concurrent sessions over one transport.Conn.
// Both endpoints wrap their side of the link (one with Config.Server
// set); Open starts a session, Accept claims sessions the peer opened.
// A Mux owns the link's receive side: nothing else may call Recv on the
// wrapped conn while the mux lives.
type Mux struct {
	inner transport.Conn
	cfg   Config

	sendMu sync.Mutex // serializes frames onto the shared link

	mu       sync.Mutex
	streams  map[uint64]*Stream
	nextSID  uint64
	dead     bool
	err      error
	acceptCh chan *Stream
	done     chan struct{}
}

// NewMux wraps conn. The mux immediately starts its demux loop and owns
// conn until Close; closing the mux closes conn.
func NewMux(conn transport.Conn, cfg Config) *Mux {
	return newMux(conn, cfg, nil)
}

// newMux additionally accepts frames already read off the link (the
// Server's sniff), which the demux loop dispatches before touching the
// conn.
func newMux(conn transport.Conn, cfg Config, preread []transport.Message) *Mux {
	cfg = cfg.withDefaults()
	m := &Mux{
		inner:    conn,
		cfg:      cfg,
		streams:  make(map[uint64]*Stream),
		nextSID:  1,
		acceptCh: make(chan *Stream, cfg.AcceptBacklog),
		done:     make(chan struct{}),
	}
	if cfg.Server {
		m.nextSID = 2
	}
	go m.recvLoop(preread)
	return m
}

// Open starts a new session and returns its virtual link. The open
// travels asynchronously: a peer that refuses the session (admission
// control) fails the stream's subsequent operations with ErrOverloaded.
func (m *Mux) Open() (*Stream, error) {
	m.mu.Lock()
	if m.dead {
		err := m.err
		m.mu.Unlock()
		return nil, fmt.Errorf("session: open: %w", err)
	}
	sid := m.nextSID
	m.nextSID += 2
	st := m.newStream(sid)
	m.streams[sid] = st
	m.mu.Unlock()
	m.count("mux_sessions_opened")
	m.gaugeActive()
	if err := m.send(controlFrame(opOpen, sid, "")); err != nil {
		m.removeStream(sid)
		return nil, fmt.Errorf("session: open: %w", err)
	}
	return st, nil
}

// Accept claims the next session the peer opened. It blocks until one
// arrives or the mux dies; after the link fails, already-queued
// sessions are still handed out (dead, but carrying their error) before
// the link error is returned.
func (m *Mux) Accept() (*Stream, error) {
	select {
	case st := <-m.acceptCh:
		return st, nil
	case <-m.done:
		select {
		case st := <-m.acceptCh:
			return st, nil
		default:
		}
		m.mu.Lock()
		err := m.err
		m.mu.Unlock()
		return nil, fmt.Errorf("session: accept: %w", err)
	}
}

// Close tears the mux down: every session fails with ErrMuxClosed and
// the underlying link is closed. The mux is marked dead before the
// link closes so sessions deterministically see ErrMuxClosed, not the
// closed-socket error the demux loop races into.
func (m *Mux) Close() error {
	m.fail(ErrMuxClosed)
	return m.inner.Close()
}

// Done is closed when the mux dies (link failure or Close).
func (m *Mux) Done() <-chan struct{} { return m.done }

// Err returns the terminal error after Done is closed (nil before).
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dead {
		return nil
	}
	return m.err
}

// Sessions returns the number of live sessions on the link.
func (m *Mux) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.streams)
}

// Stats returns the underlying link's traffic counters (all sessions
// combined, mux framing included). Per-session attribution is on each
// Stream's own Stats.
func (m *Mux) Stats() *transport.Stats { return m.inner.Stats() }

// send serializes one frame onto the shared link. A send failure is a
// link failure: it kills the mux so every session aborts promptly
// instead of timing out one by one.
//
// seclint:guards sendMu exists to hold across inner.Send — it is the per-link serialization point putting exactly one frame at a time on the shared conn
func (m *Mux) send(frame transport.Message) error {
	m.sendMu.Lock()
	err := m.inner.Send(frame)
	m.sendMu.Unlock()
	if err != nil {
		m.fail(fmt.Errorf("session: link send failed: %w", err))
		return err
	}
	return nil
}

// recvLoop is the demux pump: it owns the link's receive side, routing
// every inbound frame to its session's queue. Per-operation timeouts on
// the wrapped conn are treated as link idleness, not failure — dead-peer
// detection is the per-stream timers' job, because an idle multiplexed
// link with no traffic is healthy.
func (m *Mux) recvLoop(preread []transport.Message) {
	for _, f := range preread {
		m.dispatch(f)
	}
	for {
		frame, err := m.inner.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			m.fail(err)
			return
		}
		m.dispatch(frame)
	}
}

// dispatch routes one inbound frame. Unknown sessions and malformed
// headers are counted and dropped — stale frames for a session closed
// locally must not damage its siblings.
func (m *Mux) dispatch(frame transport.Message) {
	op, sid, rest, ok := parseFrame(frame.Type)
	if !ok {
		m.count("mux_frames_malformed")
		return
	}
	switch op {
	case opOpen:
		m.handleOpen(sid)
	case opData:
		m.mu.Lock()
		st := m.streams[sid]
		m.mu.Unlock()
		if st == nil {
			m.count("mux_frames_stale")
			return
		}
		st.deliver(unwrapData(rest, frame), int64(frame.Size()))
	case opClose:
		m.mu.Lock()
		st := m.streams[sid]
		delete(m.streams, sid)
		m.mu.Unlock()
		if st != nil {
			st.peerClose()
			m.gaugeActive()
		}
	case opReject:
		m.mu.Lock()
		st := m.streams[sid]
		delete(m.streams, sid)
		m.mu.Unlock()
		if st != nil {
			st.fail(parseReject(sid, rest))
			m.count("mux_sessions_rejected_by_peer")
			m.gaugeActive()
		}
	}
}

// handleOpen admits or rejects a session the peer opened.
func (m *Mux) handleOpen(sid uint64) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	if _, dup := m.streams[sid]; dup {
		// Protocol violation by the peer; drop rather than clobber the
		// existing session.
		m.mu.Unlock()
		m.count("mux_frames_malformed")
		return
	}
	if m.cfg.MaxSessions > 0 && len(m.streams) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.reject(sid, rejectOverloaded)
		return
	}
	st := m.newStream(sid)
	m.streams[sid] = st
	m.mu.Unlock()
	select {
	case m.acceptCh <- st:
		m.count("mux_sessions_accepted")
		m.gaugeActive()
	default:
		// Accept backlog full: nobody is claiming sessions fast enough.
		m.removeStream(sid)
		m.reject(sid, rejectOverloaded)
	}
}

// reject refuses a peer-opened session with the given reason.
func (m *Mux) reject(sid uint64, reason string) {
	m.count("mux_sessions_rejected")
	if err := m.send(controlFrame(opReject, sid, reason)); err != nil {
		// The link just died; fail() already tore everything down and
		// the opener learns from the link failure instead.
		return
	}
}

// removeStream drops a session from the routing table (local close or
// failed open).
func (m *Mux) removeStream(sid uint64) {
	m.mu.Lock()
	delete(m.streams, sid)
	m.mu.Unlock()
	m.gaugeActive()
}

// fail marks the mux dead and propagates err to every live session.
// io.EOF (orderly link shutdown by the peer) passes through bare so
// sessions see the same clean-close semantics a plain conn gives.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.err = err
	orphans := make([]*Stream, 0, len(m.streams))
	for _, st := range m.streams {
		orphans = append(orphans, st)
	}
	m.streams = make(map[uint64]*Stream)
	close(m.done)
	m.mu.Unlock()
	for _, st := range orphans {
		st.fail(err)
	}
	m.gaugeActive()
}

func (m *Mux) count(name string) {
	if m.cfg.Telemetry.Enabled() {
		m.cfg.Telemetry.Counter(name).Add(1)
	}
}

func (m *Mux) gaugeActive() {
	if m.cfg.Telemetry.Enabled() {
		m.mu.Lock()
		n := len(m.streams)
		m.mu.Unlock()
		m.cfg.Telemetry.Gauge("mux_sessions_active").Set(int64(n))
	}
}

// Stream is one virtual link of a multiplexed connection. It satisfies
// transport.Conn, so protocol code is oblivious to the mux underneath.
// Like the plain transports it supports one concurrent sender and one
// concurrent receiver.
type Stream struct {
	mux *Mux
	id  uint64
	in  chan transport.Message

	timeout atomic.Int64 // per-operation bound in nanoseconds; 0 disables
	stats   transport.Stats

	closeOnce sync.Once
	closed    chan struct{} // local Close

	peerOnce sync.Once
	peerDone chan struct{} // peer sent an orderly close

	failOnce sync.Once
	failed   chan struct{} // reject or link failure
	err      error         // set before failed closes; read only after
}

func (m *Mux) newStream(sid uint64) *Stream {
	return &Stream{
		mux:      m,
		id:       sid,
		in:       make(chan transport.Message, m.cfg.QueueDepth),
		closed:   make(chan struct{}),
		peerDone: make(chan struct{}),
		failed:   make(chan struct{}),
	}
}

// SessionID returns the stream's mux session ID — the per-session
// telemetry roots in internal/mediation pick it up through this method.
func (s *Stream) SessionID() uint64 { return s.id }

// deliver enqueues one inbound message. A full queue blocks the demux
// loop (bounded buffering is the link's backpressure); a session closed
// locally discards instead, so an abandoned session cannot stall its
// siblings.
func (s *Stream) deliver(msg transport.Message, wireSize int64) {
	select {
	case s.in <- msg:
		s.stats.CountRecv(wireSize)
	case <-s.closed:
		s.mux.count("mux_frames_stale")
	case <-s.mux.done:
	}
}

// peerClose marks the peer's orderly close; queued messages remain
// readable, then Recv reports io.EOF.
func (s *Stream) peerClose() {
	s.peerOnce.Do(func() { close(s.peerDone) })
}

// fail poisons the stream (admission reject or link failure).
func (s *Stream) fail(err error) {
	s.failOnce.Do(func() {
		s.err = err
		close(s.failed)
	})
}

// deadline mirrors the in-memory transport's timer-based per-operation
// bound.
func (s *Stream) deadline() (<-chan time.Time, func()) {
	d := time.Duration(s.timeout.Load())
	if d <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(d)
	return t.C, func() { t.Stop() }
}

// Send implements transport.Conn: the message is wrapped into a data
// frame and serialized onto the shared link.
func (s *Stream) Send(m transport.Message) error {
	select {
	case <-s.closed:
		return fmt.Errorf("session: send on closed session")
	default:
	}
	select {
	case <-s.failed:
		return fmt.Errorf("session: send: %w", s.err)
	default:
	}
	select {
	case <-s.peerDone:
		return fmt.Errorf("session: peer closed session")
	default:
	}
	frame := dataFrame(s.id, m)
	if err := s.mux.send(frame); err != nil {
		return fmt.Errorf("session: send: %w", err)
	}
	s.stats.CountSend(int64(frame.Size()))
	return nil
}

// Recv implements transport.Conn. Messages queued before a peer close
// or link failure drain first; then an orderly peer close reports
// io.EOF (parity with the plain transports) and a failed session
// reports its terminal error.
func (s *Stream) Recv() (transport.Message, error) {
	select {
	case m := <-s.in:
		return m, nil
	default:
	}
	deadline, stop := s.deadline()
	defer stop()
	select {
	case m := <-s.in:
		return m, nil
	case <-s.closed:
		return transport.Message{}, fmt.Errorf("session: recv on closed session")
	case <-s.failed:
		select {
		case m := <-s.in:
			return m, nil
		default:
		}
		return transport.Message{}, s.recvErr()
	case <-s.peerDone:
		select {
		case m := <-s.in:
			return m, nil
		default:
		}
		return transport.Message{}, io.EOF
	case <-deadline:
		return transport.Message{}, fmt.Errorf("session: recv: %w", transport.ErrTimeout)
	}
}

// recvErr renders the terminal error for Recv: bare io.EOF keeps its
// clean-close meaning, everything else keeps its chain (ErrOverloaded,
// transport errors) for errors.Is.
func (s *Stream) recvErr() error {
	if errors.Is(s.err, io.EOF) {
		return io.EOF
	}
	return s.err
}

// Expect implements transport.Conn.
func (s *Stream) Expect(typ string) (transport.Message, error) {
	m, err := s.Recv()
	if err != nil {
		return transport.Message{}, err
	}
	if m.Type != typ {
		return transport.Message{}, fmt.Errorf("session: expected message %q, got %q", typ, m.Type)
	}
	return m, nil
}

// Close implements transport.Conn: it retires the session locally and
// notifies the peer with a close frame. The shared link stays up for
// the sibling sessions.
func (s *Stream) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mux.removeStream(s.id)
		if err := s.mux.send(controlFrame(opClose, s.id, "")); err != nil {
			// The link is already down; every session has been failed
			// and the peer learns from the link, not the frame.
			return
		}
	})
	return nil
}

// Reject refuses a server-side session before handling it (admission
// control): the opener's operations fail with ErrOverloaded and the
// session is retired locally. Only meaningful on streams obtained from
// Accept, before any payload is sent.
func (s *Stream) Reject() {
	s.rejectWith(ErrOverloaded, rejectOverloaded)
}

// RejectOverloaded refuses a server-side session for overload, carrying
// a retry-after hint (when positive) that the opener's retry
// orchestrator honors before re-opening.
func (s *Stream) RejectOverloaded(hint time.Duration) {
	s.rejectWith(ErrOverloaded, rejectReason(rejectOverloaded, hint))
}

// RejectDraining refuses a server-side session because the server is
// shutting down: the opener sees ErrDraining, a retryable-elsewhere
// condition, instead of a protocol failure.
func (s *Stream) RejectDraining() {
	s.rejectWith(ErrDraining, rejectDraining)
}

// rejectWith retires the session locally with the typed cause and sends
// the reject frame carrying reason to the opener.
func (s *Stream) rejectWith(cause error, reason string) {
	s.fail(fmt.Errorf("session %d rejected: %w", s.id, cause))
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mux.removeStream(s.id)
		s.mux.reject(s.id, reason)
	})
}

// SetTimeout implements transport.Conn: it bounds this session's Recv
// waits with a timer and arms the shared link's own per-operation
// timeout with the same value (last writer wins across sessions — in
// practice every session of a deployment shares one Params.Timeout), so
// a Send blocked on a saturated dead peer is bounded too. The mux demux
// loop itself treats link-level receive timeouts as idleness.
func (s *Stream) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.timeout.Store(int64(d))
	s.mux.inner.SetTimeout(d)
}

// Stats implements transport.Conn: this session's share of the link
// traffic, counted in full frames (mux header included).
func (s *Stream) Stats() *transport.Stats { return &s.stats }
