package session

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// muxPair builds a connected client/server mux over the in-memory
// transport and registers teardown plus a goroutine-leak check.
func muxPair(t *testing.T, clientCfg, serverCfg Config) (*Mux, *Mux) {
	t.Helper()
	snap := testutil.Snapshot()
	a, b := transport.Pair()
	cm := NewMux(a, clientCfg)
	serverCfg.Server = true
	sm := NewMux(b, serverCfg)
	t.Cleanup(func() {
		if err := cm.Close(); err != nil {
			t.Logf("client mux close: %v", err)
		}
		if err := sm.Close(); err != nil {
			t.Logf("server mux close: %v", err)
		}
		testutil.CheckGoroutines(t, snap)
	})
	return cm, sm
}

func sendMsg(t *testing.T, c transport.Conn, typ, body string) {
	t.Helper()
	if err := c.Send(transport.Message{Type: typ, Body: []byte(body)}); err != nil {
		t.Fatalf("send %q: %v", typ, err)
	}
}

func TestMuxOpenAcceptEcho(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if st.SessionID()%2 != 1 {
		t.Fatalf("client session ID %d: want odd", st.SessionID())
	}
	sendMsg(t, st, "ping", "hello")

	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if srv.SessionID() != st.SessionID() {
		t.Fatalf("session IDs disagree: %d vs %d", srv.SessionID(), st.SessionID())
	}
	m, err := srv.Expect("ping")
	if err != nil {
		t.Fatalf("server expect: %v", err)
	}
	if string(m.Body) != "hello" {
		t.Fatalf("body %q, want hello", m.Body)
	}
	sendMsg(t, srv, "pong", "world")
	m, err = st.Expect("pong")
	if err != nil {
		t.Fatalf("client expect: %v", err)
	}
	if string(m.Body) != "world" {
		t.Fatalf("body %q, want world", m.Body)
	}
}

func TestMuxBidirectionalOpen(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	c1, err := cm.Open()
	if err != nil {
		t.Fatalf("client open: %v", err)
	}
	s1, err := sm.Open()
	if err != nil {
		t.Fatalf("server open: %v", err)
	}
	if c1.SessionID() == s1.SessionID() {
		t.Fatalf("ID collision across roles: %d", c1.SessionID())
	}
	if s1.SessionID()%2 != 0 {
		t.Fatalf("server session ID %d: want even", s1.SessionID())
	}
	sendMsg(t, s1, "srv.hi", "")
	got, err := cm.Accept()
	if err != nil {
		t.Fatalf("client accept: %v", err)
	}
	if _, err := got.Expect("srv.hi"); err != nil {
		t.Fatalf("expect: %v", err)
	}
}

// TestMuxConcurrentSessions runs several sessions at once and checks
// message streams stay isolated and ordered per session.
func TestMuxConcurrentSessions(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	const sessions, msgs = 8, 20

	// Server: echo every message back on its own session.
	go func() {
		for {
			st, err := sm.Accept()
			if err != nil {
				return
			}
			go func() {
				defer st.Close()
				for {
					m, err := st.Recv()
					if err != nil {
						return
					}
					if err := st.Send(m); err != nil {
						return
					}
				}
			}()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := cm.Open()
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			for j := 0; j < msgs; j++ {
				want := fmt.Sprintf("s%d.m%d", i, j)
				if err := st.Send(transport.Message{Type: want}); err != nil {
					errs <- fmt.Errorf("session %d send: %w", i, err)
					return
				}
				m, err := st.Recv()
				if err != nil {
					errs <- fmt.Errorf("session %d recv: %w", i, err)
					return
				}
				if m.Type != want {
					errs <- fmt.Errorf("session %d: got %q, want %q", i, m.Type, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxCloseDrainsThenEOF checks the orderly-close contract: messages
// sent before Close stay readable, then Recv reports io.EOF.
func TestMuxCloseDrainsThenEOF(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sendMsg(t, st, "a", "")
	sendMsg(t, st, "b", "")
	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	// Let both data frames reach the peer queue before the close frame
	// race can matter; frames are ordered on the link, so waiting for
	// the first implies the second follows before the close.
	if _, err := srv.Expect("a"); err != nil {
		t.Fatalf("expect a: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := srv.Expect("b"); err != nil {
		t.Fatalf("expect b after close: %v", err)
	}
	if _, err := srv.Recv(); err != io.EOF {
		t.Fatalf("recv after drain: %v, want io.EOF", err)
	}
	if err := st.Send(transport.Message{Type: "late"}); err == nil {
		t.Fatal("send on closed session succeeded")
	}
}

// TestMuxPerLinkOverload checks the per-link MaxSessions backstop: the
// peer's reject poisons the excess session with ErrOverloaded while the
// admitted session keeps working.
func TestMuxPerLinkOverload(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{MaxSessions: 1})
	first, err := cm.Open()
	if err != nil {
		t.Fatalf("open first: %v", err)
	}
	sendMsg(t, first, "hold", "")
	if _, err := sm.Accept(); err != nil {
		t.Fatalf("accept first: %v", err)
	}

	second, err := cm.Open()
	if err != nil {
		t.Fatalf("open second: %v", err)
	}
	second.SetTimeout(2 * time.Second)
	_, err = second.Recv()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second session recv: %v, want ErrOverloaded", err)
	}
	if err := second.Send(transport.Message{Type: "x"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second session send: %v, want ErrOverloaded", err)
	}
	// The sibling is unaffected.
	if err := first.Send(transport.Message{Type: "still-alive"}); err != nil {
		t.Fatalf("first session send after reject: %v", err)
	}
}

// TestMuxLinkFailure checks that a dead physical link fails every
// session promptly with the link error, and Open refuses afterwards.
func TestMuxLinkFailure(t *testing.T) {
	snap := testutil.Snapshot()
	a, b := transport.Pair()
	cm := NewMux(a, Config{})
	sm := newMux(b, Config{Server: true}, nil)
	defer testutil.CheckGoroutines(t, snap)

	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sendMsg(t, st, "ping", "")
	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if _, err := srv.Expect("ping"); err != nil {
		t.Fatalf("expect: %v", err)
	}

	// Kill the client side of the link out from under both muxes.
	if err := cm.Close(); err != nil {
		t.Fatalf("mux close: %v", err)
	}
	err = testutil.WithinDeadline(t, 2*time.Second, func() error {
		_, err := st.Recv()
		return err
	})
	if !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("local stream after close: %v, want ErrMuxClosed", err)
	}
	// The peer sees the link drop as an orderly EOF (chan transport
	// semantics) on its sessions.
	err = testutil.WithinDeadline(t, 2*time.Second, func() error {
		_, err := srv.Recv()
		return err
	})
	if !errors.Is(err, io.EOF) {
		t.Fatalf("peer stream after link death: %v, want io.EOF", err)
	}
	if _, err := cm.Open(); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("open on dead mux: %v, want ErrMuxClosed", err)
	}
	if err := sm.Close(); err != nil {
		t.Logf("server mux close: %v", err)
	}
}

// TestMuxStrayFrames checks that malformed headers and frames for
// unknown or already-closed sessions are discarded without damaging
// live sessions.
func TestMuxStrayFrames(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sendMsg(t, st, "ping", "")
	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if _, err := srv.Expect("ping"); err != nil {
		t.Fatalf("expect: %v", err)
	}

	// Inject junk below the mux: malformed header, unknown session,
	// unknown opcode, close for a session that never existed.
	for _, typ := range []string{
		"not-a-mux-frame",
		"mux.",
		"mux.d.",
		"mux.d.notanumber.x",
		"mux.z.1.x",
		"mux.d.99.ghost",
		"mux.c.97",
		"mux.r.95.overloaded",
	} {
		if err := cm.send(transport.Message{Type: typ}); err != nil {
			t.Fatalf("inject %q: %v", typ, err)
		}
	}
	// The live session still works after all of it.
	sendMsg(t, srv, "pong", "")
	if _, err := st.Expect("pong"); err != nil {
		t.Fatalf("session damaged by stray frames: %v", err)
	}
}

// TestMuxBackpressure checks bounded buffering: an unread session queue
// blocks the demux loop rather than growing without bound, and unblocks
// once the consumer catches up.
func TestMuxBackpressure(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{QueueDepth: 2})
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		sendMsg(t, st, fmt.Sprintf("m%d", i), "")
	}
	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	srv.SetTimeout(2 * time.Second)
	for i := 0; i < n; i++ {
		if _, err := srv.Expect(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
}

// TestMuxRecvTimeout checks the per-stream deadline: an idle session
// reports ErrTimeout while the shared link stays healthy.
func TestMuxRecvTimeout(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sendMsg(t, st, "ping", "")
	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if _, err := srv.Expect("ping"); err != nil {
		t.Fatalf("expect: %v", err)
	}
	st.SetTimeout(30 * time.Millisecond)
	if _, err := st.Recv(); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("idle recv: %v, want ErrTimeout", err)
	}
	// The timeout poisoned nothing: traffic still flows.
	st.SetTimeout(2 * time.Second)
	sendMsg(t, srv, "pong", "")
	if _, err := st.Expect("pong"); err != nil {
		t.Fatalf("session damaged by timeout: %v", err)
	}
}

// TestMuxStats checks per-session wire attribution: each stream counts
// its own frames (mux header included), and the link's Stats sees the
// combined traffic.
func TestMuxStats(t *testing.T) {
	cm, sm := muxPair(t, Config{}, Config{})
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	body := []byte("0123456789")
	sendMsg(t, st, "data", string(body))
	srv, err := sm.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if _, err := srv.Expect("data"); err != nil {
		t.Fatalf("expect: %v", err)
	}
	if got := st.Stats().MsgsSent(); got != 1 {
		t.Fatalf("stream msgs sent = %d, want 1", got)
	}
	sent := st.Stats().BytesSent()
	if want := int64(len("data") + len(body)); sent <= want {
		t.Fatalf("stream bytes sent = %d, want > %d (mux header included)", sent, want)
	}
	if got := srv.Stats().BytesRecv(); got != sent {
		t.Fatalf("peer bytes recv = %d, want %d", got, sent)
	}
	// Link-level stats include the open control frame too.
	if link := cm.Stats().BytesSent(); link <= sent {
		t.Fatalf("link bytes sent = %d, want > per-stream %d", link, sent)
	}
}

func TestGateAdmission(t *testing.T) {
	g := NewGate(2, 1, nil)
	if err := g.Acquire(); err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if err := g.Acquire(); err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := g.Active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}

	// Third acquirer parks in the wait queue.
	waited := make(chan error, 1)
	go func() { waited <- g.Acquire() }()
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("third acquirer never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth overflows the queue: typed reject, no blocking.
	if err := g.Acquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire: %v, want ErrOverloaded", err)
	}

	g.Release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.Release()
	g.Release()
	if got := g.Active(); got != 0 {
		t.Fatalf("active after releases = %d, want 0", got)
	}
}

func TestGateNil(t *testing.T) {
	var g *Gate
	if err := g.Acquire(); err != nil {
		t.Fatalf("nil gate acquire: %v", err)
	}
	g.Release()
	if g.Active() != 0 || g.Waiting() != 0 {
		t.Fatal("nil gate reports occupancy")
	}
	if NewGate(0, 5, nil) != nil {
		t.Fatal("NewGate(0, ...) should disable admission control")
	}
}
