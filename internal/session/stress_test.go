package session

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// TestStressInterleavedSessions drives well over 32 concurrent sessions
// through one mux with a deliberately small queue depth, so demux
// backpressure, open/close interleaving and per-session ordering all
// get exercised under the race detector (the Makefile race target runs
// this package).
func TestStressInterleavedSessions(t *testing.T) {
	const (
		sessions = 40
		msgs     = 25
	)
	snap := testutil.Snapshot()
	a, b := transport.Pair()
	cm := NewMux(a, Config{QueueDepth: 4})
	sm := NewMux(b, Config{Server: true, QueueDepth: 4})
	defer func() {
		if err := cm.Close(); err != nil {
			t.Logf("client mux close: %v", err)
		}
		if err := sm.Close(); err != nil {
			t.Logf("server mux close: %v", err)
		}
		testutil.CheckGoroutines(t, snap)
	}()

	// Server: echo loop per session.
	go func() {
		for {
			st, err := sm.Accept()
			if err != nil {
				return
			}
			go func() {
				defer st.Close()
				for {
					m, err := st.Recv()
					if err != nil {
						return
					}
					if err := st.Send(m); err != nil {
						return
					}
				}
			}()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := cm.Open()
			if err != nil {
				errs <- fmt.Errorf("session %d open: %w", i, err)
				return
			}
			defer st.Close()
			st.SetTimeout(10 * time.Second)
			// Pipeline a small burst, then strict request/response, so
			// both queued and alternating traffic interleave across
			// sessions.
			burst := 3
			for j := 0; j < burst; j++ {
				if err := st.Send(transport.Message{Type: fmt.Sprintf("s%d.m%d", i, j)}); err != nil {
					errs <- fmt.Errorf("session %d burst send: %w", i, err)
					return
				}
			}
			for j := 0; j < msgs; j++ {
				if j+burst < msgs {
					if err := st.Send(transport.Message{Type: fmt.Sprintf("s%d.m%d", i, j+burst)}); err != nil {
						errs <- fmt.Errorf("session %d send: %w", i, err)
						return
					}
				}
				m, err := st.Recv()
				if err != nil {
					errs <- fmt.Errorf("session %d recv %d: %w", i, j, err)
					return
				}
				if want := fmt.Sprintf("s%d.m%d", i, j); m.Type != want {
					errs <- fmt.Errorf("session %d: got %q, want %q", i, m.Type, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := cm.Sessions(); n != 0 {
		t.Errorf("%d sessions still registered on client mux", n)
	}
}
