package session

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// echoHandler serves one session: echo every message until the peer
// closes.
func echoHandler(c transport.Conn) error {
	for {
		m, err := c.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := c.Send(m); err != nil {
			return err
		}
	}
}

// flakyAcceptor fails a fixed number of times before reporting a closed
// listener.
type flakyAcceptor struct {
	failures int
	calls    int
}

func (f *flakyAcceptor) Accept() (transport.Conn, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, fmt.Errorf("transport: accept: %w", errors.New("transient fault"))
	}
	return nil, fmt.Errorf("transport: accept: %w", net.ErrClosed)
}

// TestServerAcceptBackoff checks the satellite fix: transient accept
// errors retry with capped exponential backoff (and a telemetry
// counter) instead of killing the serve loop, and a closed listener
// ends it cleanly.
func TestServerAcceptBackoff(t *testing.T) {
	reg := telemetry.NewRegistry()
	var sleeps []time.Duration
	srv := &Server{
		Handler:   echoHandler,
		Telemetry: reg,
		sleep:     func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	err := testutil.WithinDeadline(t, 2*time.Second, func() error {
		return srv.Serve(&flakyAcceptor{failures: 8})
	})
	if err != nil {
		t.Fatalf("serve: %v (closed listener should end the loop cleanly)", err)
	}
	if len(sleeps) != 8 {
		t.Fatalf("slept %d times, want 8", len(sleeps))
	}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second, // capped
	}
	for i, d := range want {
		if sleeps[i] != d {
			t.Fatalf("backoff %d = %v, want %v (full schedule %v)", i, sleeps[i], d, sleeps)
		}
	}
	if got := reg.Counter("accept_errors").Value(); got != 8 {
		t.Fatalf("accept_errors = %d, want 8", got)
	}
}

// startServer runs a Server on an ephemeral TCP listener and tears it
// down (leak-checked) at test end.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	snap := testutil.Snapshot()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := l.Close(); err != nil {
			t.Logf("listener close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned %v, want nil on closed listener", err)
		}
		testutil.CheckGoroutines(t, snap)
	})
	return l.Addr()
}

// TestServerMultiplexedSessions drives several concurrent sessions over
// one TCP link against a live Server.
func TestServerMultiplexedSessions(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr := startServer(t, &Server{Handler: echoHandler, Telemetry: reg, Logf: t.Logf})

	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	mux := NewMux(conn, Config{})
	defer func() {
		if err := mux.Close(); err != nil {
			t.Logf("mux close: %v", err)
		}
	}()

	const sessions = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := mux.Open()
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			st.SetTimeout(5 * time.Second)
			typ := fmt.Sprintf("ping.%d", i)
			if err := st.Send(transport.Message{Type: typ, Body: []byte("x")}); err != nil {
				errs <- err
				return
			}
			if _, err := st.Expect(typ); err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerPlainLink checks backward compatibility: a client that
// speaks no mux framing still gets served, its first (sniffed) message
// replayed intact.
func TestServerPlainLink(t *testing.T) {
	addr := startServer(t, &Server{Handler: echoHandler, Logf: t.Logf})
	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetTimeout(5 * time.Second)
	for i := 0; i < 3; i++ {
		typ := fmt.Sprintf("plain.%d", i)
		if err := conn.Send(transport.Message{Type: typ}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := conn.Expect(typ); err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
	}
}

// TestServerGateReject checks cross-link admission control: with every
// slot busy and no wait queue, a new session is refused with a typed
// ErrOverloaded reaching the opener, and admitted work is unaffected.
func TestServerGateReject(t *testing.T) {
	reg := telemetry.NewRegistry()
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	handler := func(c transport.Conn) error {
		started <- struct{}{}
		<-release
		return echoHandler(c)
	}
	addr := startServer(t, &Server{
		Handler:   handler,
		Gate:      NewGate(1, 0, reg),
		Telemetry: reg,
		Logf:      t.Logf,
	})

	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	mux := NewMux(conn, Config{})
	defer func() {
		if err := mux.Close(); err != nil {
			t.Logf("mux close: %v", err)
		}
	}()

	first, err := mux.Open()
	if err != nil {
		t.Fatalf("open first: %v", err)
	}
	defer first.Close()
	first.SetTimeout(5 * time.Second)
	if err := first.Send(transport.Message{Type: "hold"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first session never reached the handler")
	}

	second, err := mux.Open()
	if err != nil {
		t.Fatalf("open second: %v", err)
	}
	defer second.Close()
	second.SetTimeout(5 * time.Second)
	if _, err := second.Recv(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated open: %v, want ErrOverloaded", err)
	}
	if got := reg.Counter("sessions_rejected").Value(); got != 1 {
		t.Fatalf("sessions_rejected = %d, want 1", got)
	}

	// Admitted session completes once released.
	close(release)
	if _, err := first.Expect("hold"); err != nil {
		t.Fatalf("first session after reject of second: %v", err)
	}
}
