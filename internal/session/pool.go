package session

import (
	"fmt"
	"sync"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Pool keeps one persistent multiplexed link per dialed peer. Open
// returns a fresh session over the cached link, dialing only on first
// use; when a cached link has died, Open drops it and redials once
// transparently. This is what turns the mediator's dial-per-query relay
// into a long-lived topology: a thousand queries against the same two
// sources cost one TCP dial each, not a thousand.
//
// All methods are safe for concurrent use.
type Pool struct {
	// Dial establishes the physical link; nil selects transport.Dial.
	Dial func(addr string) (transport.Conn, error)
	// Mux configures the per-link muxes (client role; Server is forced
	// off). A nil Telemetry inherits the Pool's.
	Mux Config
	// Telemetry optionally records pool activity (links dialed,
	// redials). Nil records nothing.
	Telemetry *telemetry.Registry

	mu    sync.Mutex
	links map[string]*poolLink
}

// poolLink is one per-address entry: concurrent Opens share a single
// dial through the once.
type poolLink struct {
	once sync.Once
	mux  *Mux
	err  error
}

// Open returns a new session to the peer at addr, dialing the link if
// this is the first use and redialing once if the cached link is dead.
func (p *Pool) Open(addr string) (*Stream, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		entry := p.entry(addr)
		entry.once.Do(func() { entry.dial(p, addr, attempt > 0) })
		if entry.err != nil {
			p.drop(addr, entry)
			lastErr = entry.err
			continue
		}
		st, err := entry.mux.Open()
		if err == nil {
			return st, nil
		}
		// The cached link died since the last query; retire it and let
		// the next attempt dial fresh.
		p.drop(addr, entry)
		lastErr = err
	}
	return nil, fmt.Errorf("session: pool open %s: %w", addr, lastErr)
}

// entry returns the current (possibly still undialed) link entry for
// addr, creating it if absent.
func (p *Pool) entry(addr string) *poolLink {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.links == nil {
		p.links = make(map[string]*poolLink)
	}
	e := p.links[addr]
	if e == nil {
		e = &poolLink{}
		p.links[addr] = e
	}
	return e
}

// dial runs under the entry's once: every concurrent Open for the same
// address shares one physical dial.
func (e *poolLink) dial(p *Pool, addr string, redial bool) {
	dial := p.Dial
	if dial == nil {
		dial = transport.Dial
	}
	conn, err := dial(addr)
	if err != nil {
		e.err = err
		return
	}
	cfg := p.Mux
	cfg.Server = false
	if cfg.Telemetry == nil {
		cfg.Telemetry = p.Telemetry
	}
	e.mux = NewMux(conn, cfg)
	if p.Telemetry.Enabled() {
		p.Telemetry.Counter("pool_links_dialed").Add(1)
		if redial {
			p.Telemetry.Counter("pool_links_redialed").Add(1)
		}
	}
}

// drop retires a link entry: the table slot is freed for a fresh dial
// and the dead mux (if any) is closed.
func (p *Pool) drop(addr string, entry *poolLink) {
	p.mu.Lock()
	if p.links[addr] == entry {
		delete(p.links, addr)
	}
	p.mu.Unlock()
	if entry.mux != nil {
		if err := entry.mux.Close(); err != nil {
			// The link is being discarded; a close error on an
			// already-dead socket carries no information.
			return
		}
	}
}

// Close tears down every cached link. Sessions still running over them
// fail with ErrMuxClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	links := p.links
	p.links = nil
	p.mu.Unlock()
	var first error
	for _, e := range links {
		if e.mux == nil {
			continue
		}
		if err := e.mux.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
