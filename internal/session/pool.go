package session

import (
	"fmt"
	"sync"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// DialGovernor gates Pool dials per address. It exists so the pool's
// redial cadence can be governed by a per-peer circuit breaker
// (resilience.BreakerSet satisfies it) without this package depending
// on the orchestrator: Allow runs before every physical dial — a typed
// refusal (resilience.ErrCircuitOpen) fails the Open fast instead of
// burning a dial timeout on a peer known to be down — and Record feeds
// the dial outcome back so the breaker's window tracks reality.
type DialGovernor interface {
	// Allow reports whether a dial to addr may proceed; a non-nil error
	// fails the Open with that error (fast-fail).
	Allow(addr string) error
	// Record feeds the outcome of a dial to addr back to the governor
	// (err nil on success).
	Record(addr string, err error)
}

// Pool keeps one persistent multiplexed link per dialed peer. Open
// returns a fresh session over the cached link, dialing only on first
// use; when a cached link has died, Open drops it and redials once
// transparently. This is what turns the mediator's dial-per-query relay
// into a long-lived topology: a thousand queries against the same two
// sources cost one TCP dial each, not a thousand.
//
// A failed dial leaves the address entry undialed — the next Open tries
// again — so a peer that was down during one query does not poison the
// route forever. The redial *cadence* is the Governor's job: with a
// breaker installed, repeated dial failures trip the peer open and
// subsequent Opens fast-fail with ErrCircuitOpen until the probe timer
// re-admits one.
//
// All methods are safe for concurrent use.
type Pool struct {
	// Dial establishes the physical link; nil selects transport.Dial.
	Dial func(addr string) (transport.Conn, error)
	// Mux configures the per-link muxes (client role; Server is forced
	// off). A nil Telemetry inherits the Pool's.
	Mux Config
	// Governor optionally gates dials per address — typically a
	// resilience.BreakerSet. Nil allows every dial.
	Governor DialGovernor
	// Telemetry optionally records pool activity (links dialed,
	// redials). Nil records nothing.
	Telemetry *telemetry.Registry

	mu    sync.Mutex
	links map[string]*poolLink
}

// poolLink is one per-address entry: concurrent Opens share a single
// dial through the entry mutex. A nil mux means the entry is undialed
// (fresh, or its last dial failed).
type poolLink struct {
	mu  sync.Mutex
	mux *Mux
}

// Open returns a new session to the peer at addr, dialing the link if
// this is the first use and redialing once if the cached link is dead.
// A dial refused by the Governor or failed outright surfaces
// immediately (the orchestrator owns the retry cadence); the entry
// stays undialed so a later Open tries again.
func (p *Pool) Open(addr string) (*Stream, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		entry := p.entry(addr)
		mux, err := p.ensure(entry, addr, attempt > 0)
		if err != nil {
			lastErr = err
			break
		}
		st, err := mux.Open()
		if err == nil {
			return st, nil
		}
		// The cached link died since the last query; retire it and let
		// the next attempt dial fresh.
		p.drop(addr, entry)
		lastErr = err
	}
	return nil, fmt.Errorf("session: pool open %s: %w", addr, lastErr)
}

// entry returns the current (possibly still undialed) link entry for
// addr, creating it if absent.
func (p *Pool) entry(addr string) *poolLink {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.links == nil {
		p.links = make(map[string]*poolLink)
	}
	e := p.links[addr]
	if e == nil {
		e = &poolLink{}
		p.links[addr] = e
	}
	return e
}

// ensure returns the entry's live mux, dialing under the entry mutex so
// every concurrent Open for the same address shares one physical dial.
// Dial outcomes are reported to the Governor; a failure leaves the
// entry undialed for the next Open.
//
// seclint:guards the entry mutex deliberately covers the blocking dial so concurrent Opens for one address share a single physical dial instead of racing
func (p *Pool) ensure(entry *poolLink, addr string, redial bool) (*Mux, error) {
	entry.mu.Lock()
	defer entry.mu.Unlock()
	if entry.mux != nil {
		return entry.mux, nil
	}
	if p.Governor != nil {
		if err := p.Governor.Allow(addr); err != nil {
			return nil, err
		}
	}
	dial := p.Dial
	if dial == nil {
		dial = transport.Dial
	}
	conn, err := dial(addr)
	if p.Governor != nil {
		p.Governor.Record(addr, err)
	}
	if err != nil {
		return nil, err
	}
	cfg := p.Mux
	cfg.Server = false
	if cfg.Telemetry == nil {
		cfg.Telemetry = p.Telemetry
	}
	entry.mux = NewMux(conn, cfg)
	if p.Telemetry.Enabled() {
		p.Telemetry.Counter("pool_links_dialed").Add(1)
		if redial {
			p.Telemetry.Counter("pool_links_redialed").Add(1)
		}
	}
	return entry.mux, nil
}

// drop retires a link entry: the table slot is freed for a fresh dial
// and the dead mux (if any) is closed.
func (p *Pool) drop(addr string, entry *poolLink) {
	p.mu.Lock()
	if p.links[addr] == entry {
		delete(p.links, addr)
	}
	p.mu.Unlock()
	entry.mu.Lock()
	mux := entry.mux
	entry.mux = nil
	entry.mu.Unlock()
	if mux != nil {
		if err := mux.Close(); err != nil {
			// The link is being discarded; a close error on an
			// already-dead socket carries no information.
			return
		}
	}
}

// Close tears down every cached link. Sessions still running over them
// fail with ErrMuxClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	links := p.links
	p.links = nil
	p.mu.Unlock()
	var first error
	for _, e := range links {
		e.mu.Lock()
		mux := e.mux
		e.mux = nil
		e.mu.Unlock()
		if mux == nil {
			continue
		}
		if err := mux.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
