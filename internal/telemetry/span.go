package telemetry

import (
	"sort"
	"time"
)

// The span names used across the mediation protocols — the measured
// phase taxonomy. They mirror the paper's per-phase cost structure:
// querying (request handling, decomposition, partial queries), the
// delivery phase (source encryption, cross-encryption rounds, mediator
// matching, the DAS client-side query translation), and the client
// post-processing. Protocol code is free to emit other names; these
// constants keep the five protocols comparable.
const (
	PhaseQuerying      = "querying"
	PhaseTranslate     = "query.translate"
	PhaseSourceEncrypt = "source.encrypt"
	PhaseCrossEncrypt  = "cross.encrypt"
	PhaseMatch         = "mediator.match"
	PhasePostFilter    = "client.post-filter"
)

// Attr is one span annotation. Values must never contain secret or
// ciphertext material: spans are exported over /trace and land in
// bench artifacts (the seclint secretfmt analyzer enforces this at
// Annotate call sites).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one finished span as stored in the registry: a named
// interval attributed to a party, positioned relative to the registry
// epoch so concurrent parties share one timeline.
type SpanRecord struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"` // 0 = root
	Party   string `json:"party"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"` // relative to the registry epoch
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Tracer starts spans attributed to one party. Obtain via
// Registry.Tracer; a nil tracer (from a nil or inert registry) starts
// nil spans and costs nothing.
type Tracer struct {
	reg   *Registry
	party string
}

// Tracer returns a span factory for one party ("client", "mediator",
// "source:S1", ...). Nil-safe: a nil or inert registry returns a nil
// tracer.
func (r *Registry) Tracer(party string) *Tracer {
	if !r.active() {
		return nil
	}
	return &Tracer{reg: r, party: party}
}

// Span is one live phase interval. End it exactly once; child spans
// (Start) nest under it. All methods are nil-safe no-ops so
// un-instrumented runs pay nothing.
type Span struct {
	reg    *Registry
	party  string
	name   string
	id     int64
	parent int64
	start  time.Time
	attrs  []Attr
}

// Start opens a root span for the tracer's party.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.reg.startSpan(t.party, name, 0)
}

// Start opens a child span nested under s (same party).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.reg.startSpan(s.party, name, s.id)
}

func (r *Registry) startSpan(party, name string, parent int64) *Span {
	r.mu.Lock()
	r.nextSpanID++
	id := r.nextSpanID
	r.mu.Unlock()
	return &Span{reg: r, party: party, name: name, id: id, parent: parent, start: time.Now()}
}

// Annotate attaches a key/value label to the span. Labels are exported
// verbatim (Chrome trace args, JSON snapshots, /trace), so they must
// never carry key or ciphertext material — only public quantities such
// as counts, protocol names and relation names.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and records it. Safe on nil spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Party:   s.party,
		Name:    s.name,
		StartNs: s.reg.sinceStart(s.start),
		DurNs:   time.Since(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	}
	s.reg.mu.Lock()
	s.reg.spans = append(s.reg.spans, rec)
	s.reg.mu.Unlock()
}

// Spans returns a copy of all finished spans, ordered by start time.
func (r *Registry) Spans() []SpanRecord {
	if !r.active() {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// PhaseTotal sums the durations of all spans with the given party and
// name, returning the total and the span count.
func (r *Registry) PhaseTotal(party, name string) (time.Duration, int) {
	if !r.active() {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	var n int
	for i := range r.spans {
		if r.spans[i].Party == party && r.spans[i].Name == name {
			total += r.spans[i].DurNs
			n++
		}
	}
	return time.Duration(total), n
}
