package telemetry

import (
	"log"
	"net/http"
)

// Handler serves a registry over HTTP:
//
//	/metrics   Prometheus text exposition (scrapeable)
//	/trace     Chrome trace-event JSON (load in chrome://tracing)
//	/snapshot  full JSON snapshot (spans + metrics + op deltas)
//
// The registry may be nil or inert; the endpoints then expose only the
// process-wide operation counters (on /metrics) and empty documents.
// All endpoints are read-only, so the handler is safe to mount on an
// operator-facing port; telemetry values must never contain secret
// material (see Span.Annotate).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			log.Printf("telemetry: writing metrics: %v", err)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteChromeTrace(w); err != nil {
			log.Printf("telemetry: writing trace: %v", err)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			log.Printf("telemetry: writing snapshot: %v", err)
		}
	})
	return mux
}

// Serve starts an HTTP server for the registry's endpoints on addr in a
// background goroutine — the opt-in observability port of the party
// commands (cmd/mediator, cmd/datasource, cmd/webdemo). Listen errors
// are logged, not fatal: a party must keep serving the protocol even if
// its metrics port is taken.
func Serve(addr string, r *Registry) {
	go func() {
		if err := http.ListenAndServe(addr, Handler(r)); err != nil {
			log.Printf("telemetry: serving %s: %v", addr, err)
		}
	}()
}
