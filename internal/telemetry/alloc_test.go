package telemetry

import "testing"

// The acceptance bar for the subsystem: with a nil registry every
// telemetry call on a protocol hot path must be free — no allocations,
// so un-instrumented runs measure the protocols, not the probes.

func TestNilRegistryZeroAllocs(t *testing.T) {
	var r *Registry
	tr := r.Tracer("client")
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")

	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("phase")
		sp.Annotate("k", "v")
		inner := sp.Start("inner")
		inner.End()
		sp.End()
	}); n != 0 {
		t.Errorf("nil span path allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	}); n != 0 {
		t.Errorf("nil metric path allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if r.Tracer("client") != nil || r.Counter("c") != nil {
			t.Fatal("nil registry produced live handles")
		}
	}); n != 0 {
		t.Errorf("nil registry lookups allocate %.1f per run, want 0", n)
	}
}

func TestOpAddZeroAllocs(t *testing.T) {
	// The always-on crypto counters sit inside Encrypt/Decrypt loops;
	// they must be a bare atomic add.
	op := CryptoOp("alloc.test")
	if n := testing.AllocsPerRun(1000, func() { op.Add(1) }); n != 0 {
		t.Errorf("Op.Add allocates %.1f per run, want 0", n)
	}
	var nilOp *Op
	if n := testing.AllocsPerRun(1000, func() { nilOp.Add(1) }); n != 0 {
		t.Errorf("nil Op.Add allocates %.1f per run, want 0", n)
	}
}
