package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Registry-scoped metrics: counters, gauges, histograms keyed by name plus
// optional label pairs. Get-or-create is mutex-guarded; hot loops should
// resolve their metric once and then use the returned handle (a single
// atomic op per update). All handles are nil-safe so a nil registry costs
// nothing.

// Counter is a monotonically increasing metric.
type Counter struct {
	name   string
	labels []string
	n      atomic.Int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value metric.
type Gauge struct {
	name   string
	labels []string
	v      atomic.Int64
}

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last set value. Nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the shared exponential bucket layout: bucket i counts
// observations v < 1<<(histShift+i). With histShift 10 and nanosecond
// observations the buckets span ~1 µs … ~34 s, which covers everything
// from a queue-wait to a full PM run.
const (
	histBucketCount = 26
	histShift       = 10
)

// BucketBound returns the exclusive upper bound of histogram bucket i.
func BucketBound(i int) int64 { return 1 << (histShift + i) }

// Histogram counts observations in exponential buckets, tracking sum
// and count. Updates are lock-free atomic adds.
type Histogram struct {
	name    string
	labels  []string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBucketCount]atomic.Int64
}

// Observe records one value (conventionally nanoseconds). Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	idx := histBucketCount - 1
	for i := 0; i < histBucketCount-1; i++ {
		if v < BucketBound(i) {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
}

// HistogramSnapshot is the exported form of a histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"` // parallel to BucketBound(i); last is +Inf
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Buckets: make([]int64, histBucketCount)}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// metricKey renders the map key of a named, labelled metric.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Counter returns (creating on first use) the named counter. Labels are
// alternating key/value pairs. Nil and inert registries return nil,
// whose methods no-op.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if !r.active() {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: labels}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if !r.active() {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: labels}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if !r.active() {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{name: name, labels: labels}
		r.hists[key] = h
	}
	return h
}

// ---------------------------------------------------------------------------
// Process-wide operation counters. The crypto packages (paillier,
// commutative, hybrid, oracle) and the parallel pool register their
// primitive counters here once, at package init, and bump them with a
// single allocation-free atomic add per operation — cheap enough to stay
// always-on (one add is ~1 ns against the ~1 ms modexp it counts).
// Registries snapshot the totals at creation and report deltas.

// Op is one process-wide operation counter.
type Op struct {
	name string
	n    atomic.Int64
}

// Add counts n applications. Nil-safe, allocation-free.
func (o *Op) Add(n int64) {
	if o != nil {
		o.n.Add(n)
	}
}

// Count returns the process-wide total. Nil-safe.
func (o *Op) Count() int64 {
	if o == nil {
		return 0
	}
	return o.n.Load()
}

// Name returns the operation name.
func (o *Op) Name() string {
	if o == nil {
		return ""
	}
	return o.name
}

var (
	globalMu    sync.Mutex
	globalOps   = map[string]*Op{}
	globalHists = map[string]*Histogram{}
)

// CryptoOp returns (creating on first use) the process-wide counter for
// one operation, conventionally named "package.operation"
// ("paillier.encrypt", "commutative.exp", "hybrid.seal", ...).
func CryptoOp(name string) *Op {
	globalMu.Lock()
	defer globalMu.Unlock()
	o, ok := globalOps[name]
	if !ok {
		o = &Op{name: name}
		globalOps[name] = o
	}
	return o
}

// GlobalHistogram returns (creating on first use) a process-wide
// histogram, e.g. the parallel pool's queue-wait distribution.
func GlobalHistogram(name string) *Histogram {
	globalMu.Lock()
	defer globalMu.Unlock()
	h, ok := globalHists[name]
	if !ok {
		h = &Histogram{name: name}
		globalHists[name] = h
	}
	return h
}

// OpTotals returns the current process-wide totals of every registered
// operation counter.
func OpTotals() map[string]int64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	out := make(map[string]int64, len(globalOps))
	for name, o := range globalOps {
		out[name] = o.n.Load()
	}
	return out
}

// OpDeltas returns OpTotals minus the registry's creation-time baseline:
// the operations performed during this registry's lifetime. Operations
// registered after the baseline count from zero.
func (r *Registry) OpDeltas() map[string]int64 {
	if !r.active() {
		return nil
	}
	totals := OpTotals()
	r.mu.Lock()
	base := r.opsBase
	r.mu.Unlock()
	out := make(map[string]int64, len(totals))
	for name, v := range totals {
		if d := v - base[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// ResetOps re-baselines the registry's operation deltas to now.
func (r *Registry) ResetOps() {
	if !r.active() {
		return
	}
	base := OpTotals()
	r.mu.Lock()
	r.opsBase = base
	r.mu.Unlock()
}

// globalHistSnapshots returns sorted name → snapshot of the process-wide
// histograms (cumulative, Prometheus-style).
func globalHistSnapshots() map[string]HistogramSnapshot {
	globalMu.Lock()
	defer globalMu.Unlock()
	out := make(map[string]HistogramSnapshot, len(globalHists))
	for name, h := range globalHists {
		out[name] = h.snapshot()
	}
	return out
}

// sortedNames returns the sorted keys of a map.
func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
