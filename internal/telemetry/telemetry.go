// Package telemetry is the observability layer of the secure-mediation
// system: hierarchical phase spans mirroring the paper's protocol phases
// (querying, delivery, post-processing), counters/gauges/histograms for
// cryptographic and transport work, and exporters (JSON snapshot,
// Prometheus text format, Chrome trace-event timelines) so live protocol
// runs can be broken down per phase × per party — the measured analogue
// of the paper's Section 6 cost model.
//
// The package is dependency-free (stdlib only) and built around two
// kinds of state:
//
//   - A *Registry owns one measurement scope: the span tree of a run and
//     its registry-scoped metrics. Every party of a protocol run
//     (client, mediator, sources) records into the registry it was
//     handed. A nil *Registry is fully valid and records nothing; all
//     paths through a nil registry are allocation-free, so
//     un-instrumented protocol hot loops pay nothing (asserted by
//     TestNilRegistryZeroAllocs).
//
//   - Process-wide operation counters (CryptoOp, GlobalHistogram) live
//     outside any registry: the crypto packages bump them on every
//     primitive application with a single atomic add. A registry records
//     the totals at creation time, so its snapshot reports the delta —
//     the operations of *this* run.
//
// Registries may be carried inside gob-encoded protocol parameters
// (mediation.Params). A registry never travels: it gob-encodes to
// nothing and decodes to an inert registry, because telemetry is a
// per-party, per-process concern — each party observes its own run.
package telemetry

import (
	"sync"
	"time"
)

// Registry is one measurement scope: a span tree plus named metrics.
// Create with NewRegistry; the zero value (and nil) is inert and
// records nothing.
type Registry struct {
	enabled bool
	start   time.Time

	mu         sync.Mutex
	nextSpanID int64
	spans      []SpanRecord
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	opsBase    map[string]int64
}

// NewRegistry returns an active registry. The process-wide operation
// totals are snapshotted now, so Snapshot reports per-run deltas.
func NewRegistry() *Registry {
	return &Registry{
		enabled:  true,
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		opsBase:  OpTotals(),
	}
}

// active reports whether the registry records anything. Nil-safe.
func (r *Registry) active() bool { return r != nil && r.enabled }

// Enabled reports whether the registry records anything. Nil-safe.
func (r *Registry) Enabled() bool { return r.active() }

// GobEncode implements gob.GobEncoder: a registry is process-local
// observer state and never travels, so it encodes to nothing.
func (r *Registry) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder: whatever was received decodes to
// an inert registry (enabled stays false), so protocol peers that gob a
// Params struct around never inherit the sender's instrumentation.
func (r *Registry) GobDecode([]byte) error { return nil }

// sinceStart returns the registry-relative timestamp of t.
func (r *Registry) sinceStart(t time.Time) int64 { return t.Sub(r.start).Nanoseconds() }
