package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// MetricSnapshot is one exported counter or gauge value.
type MetricSnapshot struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"` // alternating key/value
	Value  int64    `json:"value"`
}

// Snapshot is the full exported state of a registry: the span tree, the
// registry-scoped metrics, the per-run operation deltas, and the
// process-wide histograms (cumulative).
type Snapshot struct {
	TakenUnixNs      int64                        `json:"taken_unix_ns"`
	Counters         []MetricSnapshot             `json:"counters,omitempty"`
	Gauges           []MetricSnapshot             `json:"gauges,omitempty"`
	Histograms       map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Ops              map[string]int64             `json:"ops,omitempty"`
	GlobalHistograms map[string]HistogramSnapshot `json:"global_histograms,omitempty"`
	Spans            []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. Nil and inert
// registries return an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{TakenUnixNs: time.Now().UnixNano()}
	if !r.active() {
		return s
	}
	s.Spans = r.Spans()
	s.Ops = r.OpDeltas()
	s.GlobalHistograms = globalHistSnapshots()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, key := range sortedNames(r.counters) {
		c := r.counters[key]
		s.Counters = append(s.Counters, MetricSnapshot{Name: c.name, Labels: c.labels, Value: c.n.Load()})
	}
	for _, key := range sortedNames(r.gauges) {
		g := r.gauges[key]
		s.Gauges = append(s.Gauges, MetricSnapshot{Name: g.name, Labels: g.labels, Value: g.v.Load()})
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for key, h := range r.hists {
			s.Histograms[key] = h.snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ---------------------------------------------------------------------------
// Prometheus text exposition format (version 0.0.4). Metric names are
// sanitized to the Prometheus charset and prefixed "secmed_".

// promName maps an internal metric name onto the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return "secmed_" + b.String()
}

// promLabels renders alternating key/value pairs as {k="v",...}.
func promLabels(pairs []string, extra ...string) string {
	all := append(append([]string(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(all[i+1])
		fmt.Fprintf(&b, `%s=%q`, all[i], v)
	}
	b.WriteByte('}')
	return b.String()
}

func promHistogram(b *strings.Builder, name string, labels []string, h HistogramSnapshot) {
	n := promName(name)
	fmt.Fprintf(b, "# TYPE %s histogram\n", n)
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		le := fmt.Sprint(BucketBound(i))
		if i == len(h.Buckets)-1 {
			le = "+Inf"
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", n, promLabels(labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %d\n", n, promLabels(labels), h.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", n, promLabels(labels), h.Count)
}

// WritePrometheus writes the registry-scoped metrics, the process-wide
// operation totals (cumulative, as Prometheus counters must be) and the
// process-wide histograms in the Prometheus text exposition format.
// Span durations are aggregated into secmed_phase_ns_total per
// (party, phase). The document is rendered in memory and written in a
// single Write, so a partial scrape never reaches the client.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	// Process-wide operation counters: always exported, even through an
	// inert registry, so a /metrics endpoint shows crypto work regardless
	// of per-run instrumentation.
	ops := OpTotals()
	if len(ops) > 0 {
		fmt.Fprintf(&b, "# TYPE %s counter\n", promName("crypto_ops_total"))
		for _, name := range sortedNames(ops) {
			fmt.Fprintf(&b, "%s%s %d\n", promName("crypto_ops_total"), promLabels(nil, "op", name), ops[name])
		}
	}
	hists := globalHistSnapshots()
	for _, name := range sortedNames(hists) {
		promHistogram(&b, name, nil, hists[name])
	}
	if r.active() {
		r.writePrometheusRegistry(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePrometheusRegistry renders the registry-scoped metrics and the
// per-phase span aggregates.
func (r *Registry) writePrometheusRegistry(b *strings.Builder) {
	r.mu.Lock()
	counterKeys := sortedNames(r.counters)
	gaugeKeys := sortedNames(r.gauges)
	histKeys := sortedNames(r.hists)
	typed := map[string]bool{}
	for _, key := range counterKeys {
		c := r.counters[key]
		if !typed[c.name] {
			typed[c.name] = true
			fmt.Fprintf(b, "# TYPE %s counter\n", promName(c.name))
		}
		fmt.Fprintf(b, "%s%s %d\n", promName(c.name), promLabels(c.labels), c.n.Load())
	}
	for _, key := range gaugeKeys {
		g := r.gauges[key]
		if !typed[g.name] {
			typed[g.name] = true
			fmt.Fprintf(b, "# TYPE %s gauge\n", promName(g.name))
		}
		fmt.Fprintf(b, "%s%s %d\n", promName(g.name), promLabels(g.labels), g.v.Load())
	}
	regHists := make([]*Histogram, 0, len(histKeys))
	for _, key := range histKeys {
		regHists = append(regHists, r.hists[key])
	}
	r.mu.Unlock()
	for _, h := range regHists {
		promHistogram(b, h.name, h.labels, h.snapshot())
	}

	// Per-phase span totals.
	type phaseKey struct{ party, name string }
	totals := map[phaseKey]int64{}
	counts := map[phaseKey]int64{}
	var order []phaseKey
	for _, sp := range r.Spans() {
		k := phaseKey{sp.Party, sp.Name}
		if _, seen := totals[k]; !seen {
			order = append(order, k)
		}
		totals[k] += sp.DurNs
		counts[k]++
	}
	if len(order) > 0 {
		fmt.Fprintf(b, "# TYPE %s counter\n", promName("phase_ns_total"))
		for _, k := range order {
			fmt.Fprintf(b, "%s%s %d\n", promName("phase_ns_total"),
				promLabels(nil, "party", k.party, "phase", k.name), totals[k])
		}
		fmt.Fprintf(b, "# TYPE %s counter\n", promName("phase_spans_total"))
		for _, k := range order {
			fmt.Fprintf(b, "%s%s %d\n", promName("phase_spans_total"),
				promLabels(nil, "party", k.party, "phase", k.name), counts[k])
		}
	}
}

// ---------------------------------------------------------------------------
// Chrome trace-event format: load the output of WriteChromeTrace in
// chrome://tracing (or https://ui.perfetto.dev) to see the per-party
// phase timeline of a run. Every party becomes a named thread; spans
// become complete ("X") events.

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the span tree as a Chrome trace-event JSON
// document. Nil and inert registries write an empty (but loadable)
// trace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	spans := r.Spans()
	tids := map[string]int{}
	for _, sp := range spans {
		tid, ok := tids[sp.Party]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Party] = tid
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]string{"name": sp.Party},
			})
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: "phase", Ph: "X",
			Ts:  float64(sp.StartNs) / 1e3,
			Dur: float64(sp.DurNs) / 1e3,
			Pid: 1, Tid: tid,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		trace.TraceEvents = append(trace.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
