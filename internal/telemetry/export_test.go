package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func populated(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	tr := r.Tracer("mediator")
	sp := tr.Start(PhaseMatch)
	sp.Annotate("rows", "10")
	sp.End()
	r.Counter("messages", "party", "mediator").Add(3)
	r.Gauge("bytes_sent", "party", "mediator").Set(512)
	r.Histogram("latency_ns", "party", "mediator").Observe(2048)
	CryptoOp("export.test").Add(2)
	GlobalHistogram("export_wait_ns").Observe(100)
	return r
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := populated(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != PhaseMatch {
		t.Errorf("spans = %+v", snap.Spans)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.Ops["export.test"] < 2 {
		t.Errorf("ops = %v", snap.Ops)
	}
	if _, ok := snap.Histograms[`latency_ns{party,mediator}`]; !ok {
		t.Errorf("histograms = %v", snap.Histograms)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := populated(t)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`secmed_crypto_ops_total{op="export.test"}`,
		"# TYPE secmed_messages counter",
		`secmed_messages{party="mediator"} 3`,
		`secmed_bytes_sent{party="mediator"} 512`,
		"secmed_latency_ns_bucket",
		`le="+Inf"`,
		`secmed_phase_ns_total{party="mediator",phase="mediator.match"}`,
		`secmed_phase_spans_total{party="mediator",phase="mediator.match"} 1`,
		"secmed_export_wait_ns_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Inert registries still expose the process-wide counters.
	var inertBuf bytes.Buffer
	(&Registry{}).WritePrometheus(&inertBuf)
	if !strings.Contains(inertBuf.String(), "secmed_crypto_ops_total") {
		t.Error("inert registry dropped process-wide ops from /metrics")
	}
	if strings.Contains(inertBuf.String(), "secmed_messages") {
		t.Error("inert registry leaked registry-scoped metrics")
	}
}

func TestChromeTrace(t *testing.T) {
	r := populated(t)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var haveMeta, haveSpan bool
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "M":
			haveMeta = true
			args, _ := ev["args"].(map[string]any)
			if args["name"] != "mediator" {
				t.Errorf("thread_name args = %v", args)
			}
		case "X":
			haveSpan = true
			if ev["name"] != PhaseMatch {
				t.Errorf("span event = %v", ev)
			}
		}
	}
	if !haveMeta || !haveSpan {
		t.Errorf("trace missing meta (%v) or span (%v) events", haveMeta, haveSpan)
	}
	// Nil registry still produces a loadable document.
	var nilBuf bytes.Buffer
	var nilReg *Registry
	if err := nilReg.WriteChromeTrace(&nilBuf); err != nil {
		t.Fatalf("nil trace: %v", err)
	}
	if !strings.Contains(nilBuf.String(), "traceEvents") {
		t.Errorf("nil trace = %q", nilBuf.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	r := populated(t)
	h := Handler(r)
	for path, wantBody := range map[string]string{
		"/metrics":  "secmed_crypto_ops_total",
		"/trace":    "traceEvents",
		"/snapshot": "taken_unix_ns",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s: status %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), wantBody) {
			t.Errorf("%s: body missing %q", path, wantBody)
		}
	}
}
