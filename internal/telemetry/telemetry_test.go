package telemetry

import (
	"bytes"
	"encoding/gob"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndPhaseTotals(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("client")
	root := tr.Start("client.query")
	root.Annotate("protocol", "commutative-encryption")
	child := root.Start(PhasePostFilter)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start: root first.
	if spans[0].Name != "client.query" || spans[0].Parent != 0 {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Name != PhasePostFilter || spans[1].Parent != spans[0].ID {
		t.Errorf("child span = %+v (root id %d)", spans[1], spans[0].ID)
	}
	if spans[0].Party != "client" || spans[1].Party != "client" {
		t.Errorf("party labels: %q, %q", spans[0].Party, spans[1].Party)
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "protocol" {
		t.Errorf("root attrs = %v", spans[0].Attrs)
	}
	if spans[0].DurNs < spans[1].DurNs {
		t.Errorf("root (%d ns) shorter than child (%d ns)", spans[0].DurNs, spans[1].DurNs)
	}
	total, n := r.PhaseTotal("client", PhasePostFilter)
	if n != 1 || total < time.Millisecond {
		t.Errorf("PhaseTotal = %v × %d", total, n)
	}
	if _, n := r.PhaseTotal("mediator", PhasePostFilter); n != 0 {
		t.Errorf("wrong-party total counted %d spans", n)
	}
}

func TestNilAndInertRegistry(t *testing.T) {
	var r *Registry
	tr := r.Tracer("client")
	sp := tr.Start("x")
	sp.Annotate("k", "v")
	sp.Start("y").End()
	sp.End()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(3)
	if got := r.Spans(); got != nil {
		t.Errorf("nil registry has spans: %v", got)
	}

	inert := &Registry{} // what gob-decoding produces
	if inert.Tracer("p") != nil {
		t.Error("inert registry returned a live tracer")
	}
	if inert.Counter("c") != nil {
		t.Error("inert registry returned a live counter")
	}
	if inert.Enabled() {
		t.Error("inert registry claims to be enabled")
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs", "party", "client")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("msgs", "party", "client") != c {
		t.Error("get-or-create returned a fresh counter")
	}
	if r.Counter("msgs", "party", "mediator") == c {
		t.Error("different labels shared one counter")
	}
	g := r.Gauge("bytes")
	g.Set(7)
	g.Set(9)
	if g.Value() != 9 {
		t.Errorf("gauge = %d", g.Value())
	}
	h := r.Histogram("wait")
	h.Observe(100)                 // below first bound (1024)
	h.Observe(5000)                // bucket 3: < 8192
	h.Observe(int64(1) << 60)      // overflow bucket
	snap := h.snapshot()
	if snap.Count != 3 || snap.Sum != 100+5000+(int64(1)<<60) {
		t.Errorf("histogram snapshot = %+v", snap)
	}
	if snap.Buckets[0] != 1 || snap.Buckets[len(snap.Buckets)-1] != 1 {
		t.Errorf("bucket layout = %v", snap.Buckets)
	}
}

func TestOpDeltas(t *testing.T) {
	op := CryptoOp("test.op")
	op.Add(10)
	r := NewRegistry()
	if d := r.OpDeltas()["test.op"]; d != 0 {
		t.Errorf("fresh registry delta = %d, want 0", d)
	}
	op.Add(4)
	if d := r.OpDeltas()["test.op"]; d != 4 {
		t.Errorf("delta = %d, want 4", d)
	}
	r.ResetOps()
	if d := r.OpDeltas()["test.op"]; d != 0 {
		t.Errorf("post-reset delta = %d, want 0", d)
	}
	if CryptoOp("test.op") != op {
		t.Error("CryptoOp not idempotent")
	}
	if op.Count() < 14 {
		t.Errorf("process-wide count = %d", op.Count())
	}
}

func TestRegistryGobInert(t *testing.T) {
	type carrier struct {
		N   int
		Reg *Registry
	}
	in := carrier{N: 42, Reg: NewRegistry()}
	in.Reg.Tracer("client").Start("phase").End()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out carrier
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.N != 42 {
		t.Errorf("payload fields lost: %+v", out)
	}
	if out.Reg.Enabled() {
		t.Error("registry travelled enabled through gob")
	}
	if got := out.Reg.Spans(); len(got) != 0 {
		t.Errorf("spans travelled through gob: %v", got)
	}
	// Nil field round-trips too.
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(carrier{N: 1}); err != nil {
		t.Fatalf("encode nil registry: %v", err)
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		party := []string{"client", "mediator", "source:S1", "source:S2"}[p]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.Tracer(party)
			for i := 0; i < 100; i++ {
				sp := tr.Start("phase")
				sp.Start("inner").End()
				sp.End()
				r.Counter("ops", "party", party).Add(1)
				r.Histogram("lat", "party", party).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Spans()); got != 4*200 {
		t.Errorf("got %d spans, want %d", got, 4*200)
	}
	if v := r.Counter("ops", "party", "client").Value(); v != 100 {
		t.Errorf("client ops = %d", v)
	}
	ids := map[int64]bool{}
	for _, sp := range r.Spans() {
		if ids[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
	}
}
