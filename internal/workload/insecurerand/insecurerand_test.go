package insecurerand

import "testing"

// TestDeterministicSequence pins the contract the workload generator
// relies on: equal seeds give identical streams, and the stream is
// bit-identical to math/rand's (so published workloads stay stable).
func TestDeterministicSequence(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("draw %d: %d != %d with equal seeds", i, x, y)
		}
	}
	if New(1).Intn(1 << 30) == New(2).Intn(1<<30) {
		// Equality here is possible but astronomically unlikely; treat
		// as a regression in seed plumbing.
		t.Error("different seeds produced identical first draws")
	}
}

func TestZipfDrawsWithinRange(t *testing.T) {
	s := New(7)
	z := s.NewZipf(1.5, 1, 99)
	for i := 0; i < 1000; i++ {
		if v := z.Uint64(); v > 99 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}
