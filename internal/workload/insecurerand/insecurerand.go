// Package insecurerand quarantines the module's only deterministic,
// non-cryptographic random generator. Synthetic workload generation
// (Section 6 experiments) needs reproducible streams keyed by a seed,
// which crypto/rand cannot provide; everything protocol-facing must
// keep using crypto/rand. The seclint weakrand analyzer enforces both
// halves: math/rand may not be imported anywhere else in non-test
// code, and this package may not be imported from protocol
// directories. The single allowed import below is audited in the
// module-root seclint.allow file.
package insecurerand

import (
	"math/rand" // audited: see seclint.allow (weakrand)
)

// Source is a seeded deterministic generator. It embeds *rand.Rand, so
// callers keep the full math/rand drawing surface (Intn, Float64, ...)
// with bit-identical streams for a given seed.
type Source struct {
	*rand.Rand
}

// New returns a generator producing math/rand's exact sequence for
// seed, keeping previously published workloads reproducible.
func New(seed int64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(seed))}
}

// NewZipf returns a Zipf sampler (s > 1, v ≥ 1) over {0..imax} drawing
// from this source.
func (s *Source) NewZipf(exp, v float64, imax uint64) *rand.Zipf {
	return rand.NewZipf(s.Rand, exp, v, imax)
}
