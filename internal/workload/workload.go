// Package workload generates synthetic join workloads for the experiments
// of Section 6: relations with controlled cardinalities, active-domain
// sizes, key-overlap fractions and key-frequency skew. The paper's cost
// discussion is parameterized by exactly these quantities (|R_i|,
// |domactive(R_i.A_join)|, |dom_1 ∩ dom_2| and the tuple-set sizes
// |Tup_i(a)|), so the generator exposes each as a knob.
package workload

import (
	"fmt"

	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/workload/insecurerand"
)

// JoinSpec describes a two-relation equi-join workload.
type JoinSpec struct {
	// Rows1 and Rows2 are the relation cardinalities |R1| and |R2|.
	Rows1, Rows2 int
	// Domain1 and Domain2 are the active-domain sizes of the join key.
	Domain1, Domain2 int
	// Overlap is the fraction of R2's domain shared with R1's domain
	// (0 ≤ Overlap ≤ 1); it controls the join selectivity and the
	// intersection size the commutative protocol's mediator observes.
	Overlap float64
	// Skew is the Zipf exponent for key multiplicity; 0 means uniform.
	// Higher skew concentrates tuples on few keys, growing |Tup(a)|.
	Skew float64
	// PayloadCols adds that many extra TEXT columns per relation.
	PayloadCols int
	// PayloadWidth is the byte width of each payload column value.
	PayloadWidth int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the specification for consistency.
func (s JoinSpec) Validate() error {
	if s.Rows1 <= 0 || s.Rows2 <= 0 {
		return fmt.Errorf("workload: rows must be positive")
	}
	if s.Domain1 <= 0 || s.Domain2 <= 0 {
		return fmt.Errorf("workload: domains must be positive")
	}
	if s.Overlap < 0 || s.Overlap > 1 {
		return fmt.Errorf("workload: overlap %v out of [0,1]", s.Overlap)
	}
	if s.Skew < 0 {
		return fmt.Errorf("workload: negative skew")
	}
	if s.PayloadCols < 0 || s.PayloadWidth < 0 {
		return fmt.Errorf("workload: negative payload parameters")
	}
	return nil
}

// Generate builds the two relations R1(id, payload...) and
// R2(id, payload...). The key domain of R1 is {0..Domain1-1}; R2 shares
// ⌊Overlap·Domain2⌋ keys with R1 (drawn from the front of R1's domain) and
// uses fresh keys (offset 1<<40) for the rest.
func (s JoinSpec) Generate() (*relation.Relation, *relation.Relation, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	// Deterministic by design: experiments must be reproducible from
	// Seed alone. The generator is quarantined in insecurerand so no
	// protocol package can reach it (enforced by seclint's weakrand).
	rng := insecurerand.New(s.Seed)

	dom1 := make([]int64, s.Domain1)
	for i := range dom1 {
		dom1[i] = int64(i)
	}
	shared := int(s.Overlap * float64(s.Domain2))
	if shared > s.Domain1 {
		shared = s.Domain1
	}
	dom2 := make([]int64, 0, s.Domain2)
	dom2 = append(dom2, dom1[:shared]...)
	for i := shared; i < s.Domain2; i++ {
		dom2 = append(dom2, int64(1<<40)+int64(i))
	}

	r1, err := s.buildRelation(rng, "R1", dom1, s.Rows1)
	if err != nil {
		return nil, nil, err
	}
	r2, err := s.buildRelation(rng, "R2", dom2, s.Rows2)
	if err != nil {
		return nil, nil, err
	}
	return r1, r2, nil
}

func (s JoinSpec) buildRelation(rng *insecurerand.Source, name string, dom []int64, rows int) (*relation.Relation, error) {
	cols := []relation.Column{{Name: "id", Kind: relation.KindInt}}
	for c := 0; c < s.PayloadCols; c++ {
		cols = append(cols, relation.Column{Name: fmt.Sprintf("p%d", c), Kind: relation.KindString})
	}
	schema, err := relation.NewSchema(name, cols...)
	if err != nil {
		return nil, err
	}
	rel := relation.New(schema)

	pick := func() int64 { return dom[rng.Intn(len(dom))] }
	if s.Skew > 0 {
		// rand.Zipf requires s > 1; map (0,1] onto (1, 2] for a gentle knob.
		exp := 1 + s.Skew
		z := rng.NewZipf(exp, 1, uint64(len(dom)-1))
		pick = func() int64 { return dom[z.Uint64()] }
	}
	// Guarantee every domain value appears at least once (so the active
	// domain matches the spec); remaining rows are sampled.
	n := rows
	if n < len(dom) {
		n = rows // caller asked for fewer rows than domain values: sample only
	}
	emit := func(key int64) error {
		t := make(relation.Tuple, 0, len(cols))
		t = append(t, relation.Int(key))
		for c := 0; c < s.PayloadCols; c++ {
			t = append(t, relation.String_(randomText(rng, s.PayloadWidth)))
		}
		return rel.Append(t)
	}
	emitted := 0
	if rows >= len(dom) {
		for _, k := range dom {
			if err := emit(k); err != nil {
				return nil, err
			}
			emitted++
		}
	}
	for ; emitted < n; emitted++ {
		if err := emit(pick()); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func randomText(rng *insecurerand.Source, width int) string {
	if width == 0 {
		return ""
	}
	b := make([]byte, width)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// ExpectedJoinSize computes the exact join cardinality of the generated
// pair by a plaintext hash join on "id" — used by experiments to report
// selectivity.
func ExpectedJoinSize(r1, r2 *relation.Relation) (int, error) {
	g1, err := r1.GroupByColumns([]string{"id"})
	if err != nil {
		return 0, err
	}
	counts := make(map[string]int, len(g1))
	for _, g := range g1 {
		counts[string(relation.EncodeValues(g.Key, nil))] = len(g.Tuples)
	}
	g2, err := r2.GroupByColumns([]string{"id"})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, g := range g2 {
		total += counts[string(relation.EncodeValues(g.Key, nil))] * len(g.Tuples)
	}
	return total, nil
}
