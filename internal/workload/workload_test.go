package workload

import (
	"testing"
	"testing/quick"

	"github.com/secmediation/secmediation/internal/relation"
)

func TestValidate(t *testing.T) {
	bad := []JoinSpec{
		{Rows1: 0, Rows2: 1, Domain1: 1, Domain2: 1},
		{Rows1: 1, Rows2: 1, Domain1: 0, Domain2: 1},
		{Rows1: 1, Rows2: 1, Domain1: 1, Domain2: 1, Overlap: 1.5},
		{Rows1: 1, Rows2: 1, Domain1: 1, Domain2: 1, Skew: -1},
		{Rows1: 1, Rows2: 1, Domain1: 1, Domain2: 1, PayloadCols: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	spec := JoinSpec{Rows1: 100, Rows2: 60, Domain1: 20, Domain2: 15, Overlap: 0.5, Seed: 1, PayloadCols: 2, PayloadWidth: 8}
	r1, r2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 100 || r2.Len() != 60 {
		t.Errorf("rows: %d/%d", r1.Len(), r2.Len())
	}
	if r1.Schema().Arity() != 3 || r2.Schema().Arity() != 3 {
		t.Errorf("arity: %d/%d", r1.Schema().Arity(), r2.Schema().Arity())
	}
	d1, err := r1.ActiveDomain("id")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r2.ActiveDomain("id")
	if err != nil {
		t.Fatal(err)
	}
	// Rows ≥ domain: every domain value appears.
	if len(d1) != 20 || len(d2) != 15 {
		t.Errorf("domains: %d/%d, want 20/15", len(d1), len(d2))
	}
	// Overlap: ⌊0.5·15⌋ = 7 shared keys.
	shared := 0
	in1 := map[int64]bool{}
	for _, v := range d1 {
		in1[v.AsInt()] = true
	}
	for _, v := range d2 {
		if in1[v.AsInt()] {
			shared++
		}
	}
	if shared != 7 {
		t.Errorf("shared keys = %d, want 7", shared)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := JoinSpec{Rows1: 50, Rows2: 50, Domain1: 10, Domain2: 10, Overlap: 1, Seed: 42}
	a1, a2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !a1.EqualMultiset(b1) || !a2.EqualMultiset(b2) {
		t.Error("same seed produced different workloads")
	}
	spec.Seed = 43
	c1, _, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a1.EqualMultiset(c1) {
		t.Error("different seeds produced identical workloads (unlikely)")
	}
}

func TestZeroOverlapMeansEmptyJoin(t *testing.T) {
	spec := JoinSpec{Rows1: 40, Rows2: 40, Domain1: 10, Domain2: 10, Overlap: 0, Seed: 7}
	r1, r2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n, err := ExpectedJoinSize(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("zero-overlap join size = %d", n)
	}
}

func TestFullOverlapJoinSize(t *testing.T) {
	// rows == domain and full overlap: every key once per side → join =
	// number of shared keys = Domain2.
	spec := JoinSpec{Rows1: 10, Rows2: 8, Domain1: 10, Domain2: 8, Overlap: 1, Seed: 9}
	r1, r2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n, err := ExpectedJoinSize(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("full-overlap join size = %d, want 8", n)
	}
}

func TestSkewConcentratesKeys(t *testing.T) {
	flat := JoinSpec{Rows1: 2000, Rows2: 10, Domain1: 100, Domain2: 10, Seed: 5}
	skewed := flat
	skewed.Skew = 1.0
	f1, _, err := flat.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := skewed.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Compare the max tuple-set size |Tup(a)|.
	fMax, err := maxTupleSet(f1)
	if err != nil {
		t.Fatal(err)
	}
	sMax, err := maxTupleSet(s1)
	if err != nil {
		t.Fatal(err)
	}
	if sMax <= fMax {
		t.Errorf("skewed max |Tup(a)| = %d not larger than uniform %d", sMax, fMax)
	}
}

// Property: generation never fails for valid specs.
func TestGenerateNeverFails(t *testing.T) {
	f := func(rows1, rows2, dom1, dom2 uint8, overlap uint8, seed int64) bool {
		spec := JoinSpec{
			Rows1: int(rows1%50) + 1, Rows2: int(rows2%50) + 1,
			Domain1: int(dom1%20) + 1, Domain2: int(dom2%20) + 1,
			Overlap: float64(overlap%101) / 100, Seed: seed,
		}
		r1, r2, err := spec.Generate()
		if err != nil {
			return false
		}
		return r1.Len() == spec.Rows1 && r2.Len() == spec.Rows2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// maxTupleSet returns max |Tup(a)| over the join key.
func maxTupleSet(r *relation.Relation) (int, error) {
	groups, err := r.GroupByColumns([]string{"id"})
	if err != nil {
		return 0, err
	}
	max := 0
	for _, g := range groups {
		if len(g.Tuples) > max {
			max = len(g.Tuples)
		}
	}
	return max, nil
}
