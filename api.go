package secmediation

import (
	"crypto/rsa"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/transport"
	"github.com/secmediation/secmediation/internal/workload"
)

// Relational substrate.
type (
	// Relation is a bag of tuples under a schema.
	Relation = relation.Relation
	// Schema describes a relation's columns.
	Schema = relation.Schema
	// Column is one schema attribute.
	Column = relation.Column
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is a dynamically typed attribute value.
	Value = relation.Value
	// Kind enumerates attribute types.
	Kind = relation.Kind
)

// Attribute kinds.
const (
	KindInt    = relation.KindInt
	KindString = relation.KindString
	KindFloat  = relation.KindFloat
	KindBool   = relation.KindBool
)

// Value constructors.
var (
	// Int builds an INT value.
	Int = relation.Int
	// Str builds a TEXT value.
	Str = relation.String_
	// Float builds a FLOAT value.
	Float = relation.Float
	// Bool builds a BOOL value.
	Bool = relation.Bool
	// NewSchema validates and builds a schema.
	NewSchema = relation.NewSchema
	// MustSchema is NewSchema panicking on error.
	MustSchema = relation.MustSchema
	// NewRelation creates an empty relation.
	NewRelation = relation.New
	// FromTuples builds a relation from tuples.
	FromTuples = relation.FromTuples
	// ReadCSV loads a relation from CSV (header "name:TYPE,...").
	ReadCSV = relation.ReadCSV
	// WriteCSV writes a relation in ReadCSV's format.
	WriteCSV = relation.WriteCSV
)

// Mediation parties and protocols.
type (
	// Client is the querying party.
	Client = mediation.Client
	// Mediator is the untrusted middle party.
	Mediator = mediation.Mediator
	// Source is a datasource party.
	Source = mediation.Source
	// Network wires parties in-process.
	Network = mediation.Network
	// Protocol selects a delivery-phase protocol.
	Protocol = mediation.Protocol
	// Params tunes the protocols.
	Params = mediation.Params
	// PayloadMode selects the PM tuple-set transport.
	PayloadMode = mediation.PayloadMode
	// Dialer opens a fresh link to a datasource for one session.
	Dialer = mediation.Dialer
)

// Delivery-phase protocols (paper Listings 2–4) and baselines.
const (
	// Plaintext is the trusted-mediator baseline.
	Plaintext = mediation.ProtocolPlaintext
	// MobileCode is the prior MMM solution (join at the client).
	MobileCode = mediation.ProtocolMobileCode
	// DAS is the Database-as-a-Service protocol (Listing 2).
	DAS = mediation.ProtocolDAS
	// Commutative is the commutative-encryption protocol (Listing 3).
	Commutative = mediation.ProtocolCommutative
	// PM is the private-matching protocol (Listing 4).
	PM = mediation.ProtocolPM

	// PayloadInline packs tuple sets into the PM polynomial evaluation.
	PayloadInline = mediation.PayloadInline
	// PayloadHybrid ships tuple sets under per-set session keys (fn. 2).
	PayloadHybrid = mediation.PayloadHybrid
)

// DAS partitioning strategies.
const (
	// EquiWidth splits the value range into equal-width intervals.
	EquiWidth = das.EquiWidth
	// EquiDepth splits the sorted domain into equal-count partitions.
	EquiDepth = das.EquiDepth
	// HashBuckets hashes values into buckets.
	HashBuckets = das.HashBuckets
)

// Credentials and access control.
type (
	// Authority is a certification authority.
	Authority = credential.Authority
	// Credential binds properties to a client public key.
	Credential = credential.Credential
	// Credentials is a credential set.
	Credentials = credential.Set
	// Property is one attested client attribute.
	Property = credential.Property
	// Policy is a source-side access policy.
	Policy = credential.Policy
	// Requirement is one policy clause.
	Requirement = credential.Requirement
	// RowFilter is a row-level policy restriction.
	RowFilter = credential.RowFilter
	// Ledger records leakage and primitive usage.
	Ledger = leakage.Ledger
	// JoinSpec describes a synthetic join workload.
	JoinSpec = workload.JoinSpec
	// Expr is a predicate expression (row filters, WHERE clauses).
	Expr = algebra.Expr
)

// ParseWhere parses the WHERE clause of "SELECT * FROM R WHERE ..." into a
// predicate expression, a convenient way to state row filters in SQL.
func ParseWhere(sql string) (Expr, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return q.Where, nil
}

var (
	// NewClient creates a client with a fresh key pair.
	NewClient = mediation.NewClient
	// NewAuthority creates a certification authority.
	NewAuthority = credential.NewAuthority
	// NewNetwork wires parties in-process.
	NewNetwork = mediation.NewNetwork
	// NewLedger creates an empty leakage ledger.
	NewLedger = leakage.NewLedger
	// MaterializeView prepares a result for re-registration as a relation
	// (mediator hierarchy).
	MaterializeView = mediation.MaterializeView
	// ParseSQL parses the supported SQL fragment.
	ParseSQL = sqlparse.Parse
)

// PublicKeyOf returns the hybrid public key of a client, the one a
// certification authority binds into credentials.
func PublicKeyOf(c *Client) *rsa.PublicKey { return &c.PrivateKey.PublicKey }

// NewSource assembles a datasource serving the given relations under the
// given policies, trusting the listed authorities.
func NewSource(name string, rels map[string]*Relation, policies []*Policy, cas ...*Authority) *Source {
	catalog := make(algebra.MapCatalog, len(rels))
	for n, r := range rels {
		catalog[n] = r
	}
	polMap := make(map[string]*credential.Policy, len(policies))
	for _, p := range policies {
		polMap[p.Relation] = p
	}
	var keys []*rsa.PublicKey
	for _, ca := range cas {
		keys = append(keys, ca.PublicKey())
	}
	return &Source{Name: name, Catalog: catalog, Policies: polMap, TrustedCAs: keys}
}

// RequireProperty builds the common one-clause policy: access to relation
// requires a credential attesting name=value.
func RequireProperty(relName, name, value string) *Policy {
	return &Policy{
		Relation: relName,
		Require:  []Requirement{{Property: Property{Name: name, Value: value}}},
	}
}

// Transport re-exports for distributed deployments (cmd/mediator etc.).
type (
	// Conn is a party-to-party link.
	Conn = transport.Conn
	// Listener accepts party connections.
	Listener = transport.Listener
	// RetryPolicy shapes DialRetry's backoff.
	RetryPolicy = transport.RetryPolicy
	// FaultPlan schedules deterministic fault injection on a link.
	FaultPlan = transport.FaultPlan
	// FaultClass enumerates injectable link faults.
	FaultClass = transport.FaultClass
	// ProtocolError attributes a mid-protocol failure to a party and phase.
	ProtocolError = mediation.ProtocolError
)

var (
	// Dial connects to a listening party.
	Dial = transport.Dial
	// DialRetry is Dial with capped exponential backoff between attempts.
	DialRetry = transport.DialRetry
	// Listen starts a party listener.
	Listen = transport.Listen
	// WrapFault injects scheduled faults into a link (tests, chaos drills).
	WrapFault = transport.WrapFault
	// ErrTimeout marks a send/receive that exceeded the armed deadline.
	ErrTimeout = transport.ErrTimeout
	// ErrTooLarge marks an inbound frame above the listener's size limit.
	ErrTooLarge = transport.ErrTooLarge
)
