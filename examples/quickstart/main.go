// Command quickstart runs the same JOIN query through all five delivery
// protocols (plaintext baseline, mobile-code baseline, DAS, commutative
// encryption, private matching) on an in-memory network and prints the
// identical results with per-protocol wall time — the fastest way to see
// the whole system work.
package main

import (
	"fmt"
	"log"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

func main() {
	// Preparatory phase: certification authority, client key pair, and a
	// credential binding role=analyst to the client's public key.
	ca, err := secmediation.NewAuthority("QuickstartCA")
	if err != nil {
		log.Fatal(err)
	}
	client, err := secmediation.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	cred, err := ca.Issue(secmediation.PublicKeyOf(client),
		[]secmediation.Property{{Name: "role", Value: "analyst"}}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	client.Credentials = secmediation.Credentials{cred}

	// Two datasources with one relation each.
	orders := secmediation.MustSchema("Orders",
		secmediation.Column{Name: "cust", Kind: secmediation.KindInt},
		secmediation.Column{Name: "item", Kind: secmediation.KindString})
	customers := secmediation.MustSchema("Customers",
		secmediation.Column{Name: "cust", Kind: secmediation.KindInt},
		secmediation.Column{Name: "city", Kind: secmediation.KindString})
	r1, err := secmediation.FromTuples(orders,
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("book")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("lamp")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("pen")},
		secmediation.Tuple{secmediation.Int(5), secmediation.Str("desk")})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := secmediation.FromTuples(customers,
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("dortmund")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("berlin")},
		secmediation.Tuple{secmediation.Int(9), secmediation.Str("essen")})
	if err != nil {
		log.Fatal(err)
	}
	shop := secmediation.NewSource("ShopDB", map[string]*secmediation.Relation{"Orders": r1},
		[]*secmediation.Policy{secmediation.RequireProperty("Orders", "role", "analyst")}, ca)
	crm := secmediation.NewSource("CRM", map[string]*secmediation.Relation{"Customers": r2},
		[]*secmediation.Policy{secmediation.RequireProperty("Customers", "role", "analyst")}, ca)

	net, err := secmediation.NewNetwork(client, &secmediation.Mediator{}, shop, crm)
	if err != nil {
		log.Fatal(err)
	}

	const sql = "SELECT item, city FROM Orders JOIN Customers ON Orders.cust = Customers.cust"
	fmt.Printf("global query: %s\n\n", sql)
	for _, proto := range []secmediation.Protocol{
		secmediation.Plaintext, secmediation.MobileCode,
		secmediation.DAS, secmediation.Commutative, secmediation.PM,
	} {
		start := time.Now()
		res, err := net.Query(sql, proto, secmediation.Params{})
		if err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
		fmt.Printf("== %-24s (%v)\n%s\n", proto, time.Since(start).Round(time.Millisecond), res.Sort())
	}
}
