// Command analytics demonstrates the two protocol extensions beyond the
// paper's core join protocols:
//
//  1. Encrypted aggregation — the mediator computes SUM/COUNT/AVG over
//     Paillier ciphertexts (inspired by the aggregation-over-encrypted-
//     data work the paper's Section 7 surveys), learning only the row
//     count.
//  2. DAS selection pushdown — conjunctive WHERE conditions become
//     mediator-side index filters, shrinking the superset the client must
//     decrypt (quantified against the non-pushdown run).
package main

import (
	"fmt"
	"log"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

func main() {
	ca, err := secmediation.NewAuthority("AnalyticsCA")
	if err != nil {
		log.Fatal(err)
	}
	client, err := secmediation.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	cred, err := ca.Issue(secmediation.PublicKeyOf(client),
		[]secmediation.Property{{Name: "role", Value: "analyst"}}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	client.Credentials = secmediation.Credentials{cred}

	sales := secmediation.MustSchema("Sales",
		secmediation.Column{Name: "region", Kind: secmediation.KindInt},
		secmediation.Column{Name: "revenue", Kind: secmediation.KindFloat})
	regions := secmediation.MustSchema("Regions",
		secmediation.Column{Name: "region", Kind: secmediation.KindInt},
		secmediation.Column{Name: "country", Kind: secmediation.KindString})

	salesRel := secmediation.NewRelation(sales)
	for i := 0; i < 60; i++ {
		salesRel.MustAppend(secmediation.Tuple{
			secmediation.Int(int64(i % 12)),
			secmediation.Float(float64(100+i) + 0.25),
		})
	}
	regionsRel := secmediation.NewRelation(regions)
	for r := 0; r < 12; r++ {
		country := "de"
		if r%3 == 0 {
			country = "fr"
		}
		regionsRel.MustAppend(secmediation.Tuple{secmediation.Int(int64(r)), secmediation.Str(country)})
	}

	erp := secmediation.NewSource("ERP", map[string]*secmediation.Relation{"Sales": salesRel},
		[]*secmediation.Policy{secmediation.RequireProperty("Sales", "role", "analyst")}, ca)
	geo := secmediation.NewSource("GeoDB", map[string]*secmediation.Relation{"Regions": regionsRel},
		[]*secmediation.Policy{secmediation.RequireProperty("Regions", "role", "analyst")}, ca)

	ledger := secmediation.NewLedger()
	erp.Ledger, geo.Ledger, client.Ledger = ledger, ledger, ledger
	net, err := secmediation.NewNetwork(client, &secmediation.Mediator{Ledger: ledger}, erp, geo)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Encrypted aggregation: the mediator folds Paillier ciphertexts.
	for _, sql := range []string{
		"SELECT COUNT(*) FROM Sales",
		"SELECT SUM(revenue) FROM Sales",
		"SELECT AVG(revenue) FROM Sales WHERE region < 6",
	} {
		res, err := net.Query(sql, secmediation.PM, secmediation.Params{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s -> %s\n", sql, res.Tuple(0)[0])
	}
	fmt.Printf("mediator applied %d homomorphic additions, decrypted nothing\n\n",
		ledger.PrimitiveCount("mediator", "homomorphic-addition"))

	// 2. DAS selection pushdown: compare superset sizes.
	const joinSQL = "SELECT * FROM Sales JOIN Regions ON Sales.region = Regions.region WHERE country = 'fr'"
	run := func(push bool) int64 {
		l := secmediation.NewLedger()
		erp.Ledger, geo.Ledger, client.Ledger, net.Mediator.Ledger = l, l, l, l
		params := secmediation.Params{Partitions: 12, Pushdown: push}
		res, err := net.Query(joinSQL, secmediation.DAS, params)
		if err != nil {
			log.Fatal(err)
		}
		superset, _ := l.Observed("client", "superset-size")
		fmt.Printf("pushdown=%-5v  result=%3d tuples  superset the client had to decrypt=%4d pairs\n",
			push, res.Len(), superset)
		return superset
	}
	without := run(false)
	with := run(true)
	fmt.Printf("selection pushdown cut the client's decryption work by %.0f%%\n",
		100*(1-float64(with)/float64(without)))
}
