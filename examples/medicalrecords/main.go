// Command medicalrecords demonstrates the inter-enterprise scenario the
// paper's introduction motivates: a hospital and an insurer hold
// confidential relations about the same patients; an analyst joins them on
// the patient id via an untrusted mediator without the mediator ever
// seeing plaintext records. It also shows credential-dependent row-level
// filtering: a resident's credential only unlocks non-psychiatric records,
// a chief physician sees everything — decided by the *sources*, not the
// mediator.
package main

import (
	"fmt"
	"log"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

func main() {
	ca, err := secmediation.NewAuthority("HealthTrustCA")
	if err != nil {
		log.Fatal(err)
	}

	// Hospital relation (with a sensitivity marker) and insurer relation.
	admissions := secmediation.MustSchema("Admissions",
		secmediation.Column{Name: "patient", Kind: secmediation.KindInt},
		secmediation.Column{Name: "ward", Kind: secmediation.KindString},
		secmediation.Column{Name: "psychiatric", Kind: secmediation.KindBool})
	policies := secmediation.MustSchema("Policies",
		secmediation.Column{Name: "patient", Kind: secmediation.KindInt},
		secmediation.Column{Name: "insurer_plan", Kind: secmediation.KindString})
	hosp, err := secmediation.FromTuples(admissions,
		secmediation.Tuple{secmediation.Int(100), secmediation.Str("cardio"), secmediation.Bool(false)},
		secmediation.Tuple{secmediation.Int(101), secmediation.Str("psych"), secmediation.Bool(true)},
		secmediation.Tuple{secmediation.Int(102), secmediation.Str("ortho"), secmediation.Bool(false)},
		secmediation.Tuple{secmediation.Int(103), secmediation.Str("psych"), secmediation.Bool(true)})
	if err != nil {
		log.Fatal(err)
	}
	ins, err := secmediation.FromTuples(policies,
		secmediation.Tuple{secmediation.Int(100), secmediation.Str("gold")},
		secmediation.Tuple{secmediation.Int(101), secmediation.Str("silver")},
		secmediation.Tuple{secmediation.Int(103), secmediation.Str("basic")},
		secmediation.Tuple{secmediation.Int(999), secmediation.Str("gold")})
	if err != nil {
		log.Fatal(err)
	}

	// Hospital policy: residents are filtered to non-psychiatric rows;
	// chief physicians see everything.
	hospPolicy := &secmediation.Policy{
		Relation: "Admissions",
		Require:  []secmediation.Requirement{{Property: secmediation.Property{Name: "profession", Value: "medical"}}},
		Filters: []secmediation.RowFilter{{
			IfProperty: secmediation.Property{Name: "rank", Value: "resident"},
			Predicate:  mustPredicate("SELECT * FROM Admissions WHERE psychiatric = FALSE"),
		}},
	}
	insPolicy := secmediation.RequireProperty("Policies", "profession", "medical")

	runAs := func(rank string) {
		client, err := secmediation.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		cred, err := ca.Issue(secmediation.PublicKeyOf(client), []secmediation.Property{
			{Name: "profession", Value: "medical"},
			{Name: "rank", Value: rank},
		}, time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		client.Credentials = secmediation.Credentials{cred}

		hospital := secmediation.NewSource("Hospital",
			map[string]*secmediation.Relation{"Admissions": hosp},
			[]*secmediation.Policy{hospPolicy}, ca)
		insurer := secmediation.NewSource("Insurer",
			map[string]*secmediation.Relation{"Policies": ins},
			[]*secmediation.Policy{insPolicy}, ca)
		net, err := secmediation.NewNetwork(client, &secmediation.Mediator{}, hospital, insurer)
		if err != nil {
			log.Fatal(err)
		}
		ledger := secmediation.NewLedger()
		hospital.Ledger, insurer.Ledger, client.Ledger = ledger, ledger, ledger
		net.Mediator.Ledger = ledger

		res, err := net.Query(
			"SELECT ward, insurer_plan FROM Admissions NATURAL JOIN Policies",
			secmediation.Commutative, secmediation.Params{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== querying as rank=%s\n%s\n", rank, res.Sort())
		fmt.Printf("what the untrusted mediator could observe:\n")
		for item, v := range ledger.ObservedItems("mediator") {
			fmt.Printf("  %s = %d\n", item, v)
		}
		fmt.Println()
	}
	runAs("chief-physician") // full access: 3 matching patients
	runAs("resident")        // psychiatric admissions filtered out at the source
}

// mustPredicate states a row filter in SQL.
func mustPredicate(sql string) secmediation.Expr {
	e, err := secmediation.ParseWhere(sql)
	if err != nil {
		log.Fatal(err)
	}
	return e
}
