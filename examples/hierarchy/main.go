// Command hierarchy demonstrates the paper's Section 8 outlook: in a
// mediator hierarchy one mediator can act as a datasource for another, so
// several join queries execute successively. Here a supply-chain analyst
// first joins suppliers with shipments (mediation level 1), materializes
// the encrypted-join result as a view at a delegate source, and then joins
// that view with customs records (mediation level 2) — every join computed
// over ciphertexts by an untrusted mediator.
package main

import (
	"fmt"
	"log"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

func main() {
	ca, err := secmediation.NewAuthority("SupplyChainCA")
	if err != nil {
		log.Fatal(err)
	}
	client, err := secmediation.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	cred, err := ca.Issue(secmediation.PublicKeyOf(client),
		[]secmediation.Property{{Name: "role", Value: "auditor"}}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	client.Credentials = secmediation.Credentials{cred}

	suppliers := secmediation.MustSchema("Suppliers",
		secmediation.Column{Name: "sid", Kind: secmediation.KindInt},
		secmediation.Column{Name: "supplier", Kind: secmediation.KindString})
	shipments := secmediation.MustSchema("Shipments",
		secmediation.Column{Name: "sid", Kind: secmediation.KindInt},
		secmediation.Column{Name: "container", Kind: secmediation.KindString})
	customs := secmediation.MustSchema("Customs",
		secmediation.Column{Name: "container", Kind: secmediation.KindString},
		secmediation.Column{Name: "status", Kind: secmediation.KindString})

	sup, err := secmediation.FromTuples(suppliers,
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("acme")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("globex")})
	if err != nil {
		log.Fatal(err)
	}
	shp, err := secmediation.FromTuples(shipments,
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("C-100")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("C-200")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("C-201")})
	if err != nil {
		log.Fatal(err)
	}
	cst, err := secmediation.FromTuples(customs,
		secmediation.Tuple{secmediation.Str("C-100"), secmediation.Str("cleared")},
		secmediation.Tuple{secmediation.Str("C-201"), secmediation.Str("inspection")})
	if err != nil {
		log.Fatal(err)
	}

	pol := func(r string) *secmediation.Policy { return secmediation.RequireProperty(r, "role", "auditor") }

	// Level 1: suppliers ⋈ shipments via an untrusted mediator.
	net1, err := secmediation.NewNetwork(client, &secmediation.Mediator{},
		secmediation.NewSource("SupplierDB", map[string]*secmediation.Relation{"Suppliers": sup}, []*secmediation.Policy{pol("Suppliers")}, ca),
		secmediation.NewSource("LogisticsDB", map[string]*secmediation.Relation{"Shipments": shp}, []*secmediation.Policy{pol("Shipments")}, ca),
	)
	if err != nil {
		log.Fatal(err)
	}
	first, err := net1.Query("SELECT * FROM Suppliers NATURAL JOIN Shipments",
		secmediation.Commutative, secmediation.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 1 result (commutative protocol):\n%s\n", first.Sort())

	// Materialize as a view at a delegate source (the lower mediator
	// acting as a datasource for the upper one).
	view, err := secmediation.MaterializeView(first, "SupplierShipments")
	if err != nil {
		log.Fatal(err)
	}

	// Level 2: view ⋈ customs, again over ciphertexts.
	net2, err := secmediation.NewNetwork(client, &secmediation.Mediator{},
		secmediation.NewSource("DelegateMediator", map[string]*secmediation.Relation{"SupplierShipments": view}, []*secmediation.Policy{pol("SupplierShipments")}, ca),
		secmediation.NewSource("CustomsDB", map[string]*secmediation.Relation{"Customs": cst}, []*secmediation.Policy{pol("Customs")}, ca),
	)
	if err != nil {
		log.Fatal(err)
	}
	second, err := net2.Query(
		"SELECT supplier, container, status FROM SupplierShipments NATURAL JOIN Customs",
		secmediation.PM, secmediation.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level 2 result (private-matching protocol):\n%s\n", second.Sort())
}
