// Command federatedhr runs the full credential-based MMM data flow of the
// paper's Figure 2 over real TCP sockets inside one process: two
// enterprise HR datasources and a mediator each listen on their own port;
// the client obtains a credential from the certification authority,
// attaches it to a global query, and all three secure delivery protocols
// are exercised across the wire.
package main

import (
	"fmt"
	"log"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

func main() {
	ca, err := secmediation.NewAuthority("FederationCA")
	if err != nil {
		log.Fatal(err)
	}

	// Enterprise A: employee master data. Enterprise B: payroll grades.
	employees := secmediation.MustSchema("Employees",
		secmediation.Column{Name: "emp", Kind: secmediation.KindInt},
		secmediation.Column{Name: "name", Kind: secmediation.KindString},
		secmediation.Column{Name: "dept", Kind: secmediation.KindString})
	grades := secmediation.MustSchema("Grades",
		secmediation.Column{Name: "emp", Kind: secmediation.KindInt},
		secmediation.Column{Name: "grade", Kind: secmediation.KindString})
	empRel, err := secmediation.FromTuples(employees,
		secmediation.Tuple{secmediation.Int(11), secmediation.Str("Ada"), secmediation.Str("R&D")},
		secmediation.Tuple{secmediation.Int(12), secmediation.Str("Ben"), secmediation.Str("Sales")},
		secmediation.Tuple{secmediation.Int(13), secmediation.Str("Cem"), secmediation.Str("R&D")})
	if err != nil {
		log.Fatal(err)
	}
	gradeRel, err := secmediation.FromTuples(grades,
		secmediation.Tuple{secmediation.Int(11), secmediation.Str("E3")},
		secmediation.Tuple{secmediation.Int(13), secmediation.Str("E5")},
		secmediation.Tuple{secmediation.Int(14), secmediation.Str("E1")})
	if err != nil {
		log.Fatal(err)
	}

	srcA := secmediation.NewSource("EnterpriseA",
		map[string]*secmediation.Relation{"Employees": empRel},
		[]*secmediation.Policy{secmediation.RequireProperty("Employees", "role", "hr-auditor")}, ca)
	srcB := secmediation.NewSource("EnterpriseB",
		map[string]*secmediation.Relation{"Grades": gradeRel},
		[]*secmediation.Policy{secmediation.RequireProperty("Grades", "role", "hr-auditor")}, ca)

	// Each source listens on its own ephemeral TCP port.
	serveSource := func(src *secmediation.Source) string {
		l, err := secmediation.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					if err := src.Serve(conn); err != nil {
						log.Printf("source %s: %v", src.Name, err)
					}
				}()
			}
		}()
		return l.Addr()
	}
	addrA := serveSource(srcA)
	addrB := serveSource(srcB)

	// The mediator's global schema (the "embedding") plus routes.
	med := &secmediation.Mediator{
		Schemas: map[string]secmediation.Schema{"Employees": employees, "Grades": grades},
		Routes: map[string]secmediation.Dialer{
			"Employees": func() (secmediation.Conn, error) { return secmediation.Dial(addrA) },
			"Grades":    func() (secmediation.Conn, error) { return secmediation.Dial(addrB) },
		},
		CredHints: map[string][]string{"Employees": {"role"}, "Grades": {"role"}},
	}
	lm, err := secmediation.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := lm.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if err := med.HandleSession(conn); err != nil {
					log.Printf("mediator: %v", err)
				}
			}()
		}
	}()
	fmt.Printf("sources listening at %s and %s, mediator at %s\n\n", addrA, addrB, lm.Addr())

	// Preparatory phase: the client obtains its credential.
	client, err := secmediation.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	cred, err := ca.Issue(secmediation.PublicKeyOf(client),
		[]secmediation.Property{{Name: "role", Value: "hr-auditor"}}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	client.Credentials = secmediation.Credentials{cred}

	const sql = "SELECT name, dept, grade FROM Employees JOIN Grades ON Employees.emp = Grades.emp"
	for _, proto := range []secmediation.Protocol{secmediation.DAS, secmediation.Commutative, secmediation.PM} {
		conn, err := secmediation.Dial(lm.Addr())
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := client.Query(conn, sql, proto, secmediation.Params{})
		conn.Close()
		if err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
		fmt.Printf("== %-24s over TCP (%v)\n%s\n", proto, time.Since(start).Round(time.Millisecond), res.Sort())
	}
}
