module github.com/secmediation/secmediation

go 1.22
